"""Distributed tracing, critical path, diff and history suite.

Pins the observability tentpole's acceptance criteria:

* every span of a traced run carries ``trace_id``/``span_id``; parent
  ids ride the assign messages into forked workers, so a sharded
  parallel sweep reconstructs into **one rooted span tree** with every
  ``parent_id`` resolving;
* the same holds over loopback TCP remote hosts, whose wall clocks are
  skew-normalized on ingest from the handshake round trip;
* the critical-path decomposition tiles the sweep root exactly — its
  segment total always lands within 5% of the sweep span's duration —
  and attributes idle (queue-wait) time explicitly;
* ``repro diff`` flags the vectorized-vs-interpreted kernel delta on
  hot cells; ``repro history`` records runs append-only and flags
  regressions against the trailing median;
* malformed or half-written run directories are skipped with a warning,
  never crashing ``repro report``;
* per-host aggregation: host losses, per-host cell counts and host
  attrs all land in the manifest and the rendered report.
"""

import json
import os
import socket
import struct
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.errors import ReproError
from repro.obs import (
    Recorder,
    RunTelemetry,
    apply_trace_context,
    build_tree,
    check_regressions,
    critical_path,
    diff_runs,
    find_runs,
    load_history,
    load_manifest,
    load_tree,
    path_contributors,
    render_diff,
    render_history,
    render_run,
    render_trace,
    report_summary,
    trace_context,
    trace_summary,
    use_recorder,
    validate_record,
)
from repro.obs.history import append_history, record_entry
from repro.runtime.retry import RetryPolicy
from repro.runtime.supervisor import Supervisor
from repro.runtime.transport import TcpTransport, recv_frame, send_frame
from repro.trace.trace import Trace
from repro.workloads.registry import make_workload

SIZES = (32, 128)


@pytest.fixture(scope="module")
def trace():
    full = make_workload("MP3D200").generate()
    return Trace(full.events[:4000], full.num_procs, name="MP3D200",
                 copy=False)


def _loopback_available() -> bool:
    try:
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.bind(("127.0.0.1", 0))
        s.close()
        return True
    except OSError:
        return False


needs_loopback = pytest.mark.skipif(
    not _loopback_available(),
    reason="loopback sockets unavailable in this environment")


# ----------------------------------------------------------------------
# recorder trace-context unit behaviour
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_untraced_recorder_emits_no_ids(self):
        """Without set_trace_context the record shapes are unchanged —
        the byte-stability guarantee for pre-tracing consumers."""
        rec = Recorder.buffering()
        with rec.span("cell.run", cell=["classify", 32, "dubois"]):
            rec.metric("cell.rows", 1)
        for record in rec.drain():
            assert "trace_id" not in record
            assert "span_id" not in record
            assert "parent_id" not in record

    def test_nested_spans_parent_under_each_other(self):
        rec = Recorder.buffering()
        rec.set_trace_context("run-t1")
        with rec.span("sweep.run", trace="T"):
            with rec.span("cell.run", cell=["classify", 32, "dubois"]):
                rec.metric("cell.rows", 7)
            rec.event("task.done")
        cell, metric, done, sweep = None, None, None, None
        for record in rec.drain():
            validate_record(record)
            assert record.get("trace_id") == "run-t1" \
                or record["kind"] == "log"
            name = record.get("name")
            if name == "sweep.run":
                sweep = record
            elif name == "cell.run":
                cell = record
            elif name == "cell.rows":
                metric = record
            elif name == "task.done":
                done = record
        assert "parent_id" not in sweep
        assert cell["parent_id"] == sweep["span_id"]
        assert metric["parent_id"] == cell["span_id"]
        assert done["parent_id"] == sweep["span_id"]

    def test_log_records_stay_unstamped(self):
        rec = Recorder.buffering()
        rec.set_trace_context("run-t2")
        rec.log("info", "repro.test", "hello")
        (record,) = rec.drain()
        assert "trace_id" not in record
        validate_record(record)

    def test_apply_trace_context_installs_and_restores(self):
        rec = Recorder.buffering()
        with use_recorder(rec):
            assert trace_context() is None
            with apply_trace_context({"trace_id": "run-x",
                                      "parent_id": "abcd"}):
                rec.span_complete("cell.run", 0.1,
                                  cell=["classify", 32, "dubois"])
                ctx = trace_context()
                assert ctx == {"trace_id": "run-x", "parent_id": "abcd"}
            assert rec.trace_id is None
        (record,) = rec.drain()
        assert record["trace_id"] == "run-x"
        assert record["parent_id"] == "abcd"

    def test_ingest_preserves_worker_trace_ids(self):
        child = Recorder.buffering()
        child.set_trace_context("run-t3", parent_id="feed")
        child.span_complete("cell.run", 0.2,
                            cell=["classify", 32, "dubois"])
        shipped = child.drain()
        parent = Recorder.buffering()
        parent.ingest(shipped)
        (record,) = parent.drain()
        assert record["trace_id"] == "run-t3"
        assert record["parent_id"] == "feed"
        assert record["span_id"]


# ----------------------------------------------------------------------
# tree reconstruction and the critical path (synthetic spans)
# ----------------------------------------------------------------------
def _span(name, t, dur, span_id, parent_id=None, **attrs):
    record = {"v": 1, "kind": "span", "t": t, "pid": 1, "seq": 0,
              "name": name, "dur_s": dur, "status": "ok",
              "attrs": attrs, "trace_id": "run-s", "span_id": span_id}
    if parent_id is not None:
        record["parent_id"] = parent_id
    return record


class TestCriticalPath:
    def test_segments_tile_root_with_idle_gaps(self):
        spans = [
            _span("sweep.run", 0.0, 10.0, "root", trace="T"),
            _span("cell.run", 1.0, 3.0, "a", "root", cell=["c", 32, "x"]),
            _span("cell.run", 5.0, 4.0, "b", "root", cell=["c", 64, "x"]),
        ]
        tree = build_tree(spans)
        (root,) = tree.roots
        segments = critical_path(root)
        assert abs(sum(s["dur_s"] for s in segments) - 10.0) < 1e-6
        kinds = [(s["kind"], round(s["dur_s"], 3)) for s in segments]
        assert kinds == [("idle", 1.0), ("span", 3.0), ("idle", 1.0),
                         ("span", 4.0), ("idle", 1.0)]
        contributors = path_contributors(segments, root.dur_s)
        assert abs(sum(c["self_pct"] for c in contributors) - 100.0) < 0.1

    def test_overlapping_children_maximize_coverage(self):
        """Two parallel workers: the chain picks the non-overlapping
        subset covering the most wall time, not every span."""
        spans = [
            _span("sweep.run", 0.0, 10.0, "root"),
            _span("cell.run", 0.0, 6.0, "w1", "root", cell=["c", 1, "x"]),
            _span("cell.run", 0.0, 4.0, "w2", "root", cell=["c", 2, "x"]),
            _span("cell.run", 6.0, 4.0, "w3", "root", cell=["c", 3, "x"]),
        ]
        (root,) = build_tree(spans).roots
        segments = [s for s in critical_path(root) if s["kind"] == "span"]
        assert [s["span_id"] for s in segments] == ["w1", "w3"]
        assert abs(sum(s["dur_s"] for s in critical_path(root))
                   - 10.0) < 1e-6

    def test_recursion_into_sharded_cells(self):
        spans = [
            _span("sweep.run", 0.0, 10.0, "root"),
            _span("cell.run", 1.0, 8.0, "cell", "root",
                  cell=["c", 32, "x"]),
            _span("shard.run", 1.5, 5.0, "sh1", "cell",
                  cell=["c", 32, "x", "shard", 0]),
            _span("merge", 7.0, 1.5, "mg", "cell", cell=["c", 32, "x"]),
        ]
        (root,) = build_tree(spans).roots
        segments = critical_path(root)
        assert abs(sum(s["dur_s"] for s in segments) - 10.0) < 1e-6
        names = [s["name"] for s in segments if s["kind"] == "span"]
        assert names == ["shard.run", "merge"]

    def test_orphan_spans_promoted_to_roots_not_dropped(self):
        spans = [
            _span("sweep.run", 0.0, 5.0, "root"),
            _span("cell.run", 1.0, 1.0, "lost", "never-recorded",
                  cell=["c", 32, "x"]),
        ]
        tree = build_tree(spans)
        assert len(tree.roots) == 2
        assert [n.span_id for n in tree.orphans] == ["lost"]

    def test_all_untraced_stream_is_structured_error(self):
        record = _span("cell.run", 0.0, 1.0, "x")
        del record["span_id"]
        with pytest.raises(ReproError, match="no traced spans"):
            build_tree([record])


# ----------------------------------------------------------------------
# a forked parallel sweep reconstructs into one rooted tree
# ----------------------------------------------------------------------
class TestForkSweepTree:
    @pytest.fixture(scope="class")
    def run(self, trace, tmp_path_factory):
        from repro.analysis.engine import SweepEngine

        tel = str(tmp_path_factory.mktemp("tel"))
        engine = SweepEngine(trace, jobs=2, shards=2, telemetry_dir=tel)
        engine.classify_sweep(SIZES)
        (run_dir,) = find_runs(tel)
        return run_dir

    def test_single_rooted_tree_every_parent_resolves(self, run):
        tree = load_tree(run)
        assert tree.untraced == 0
        assert tree.orphans == []
        (root,) = tree.roots
        assert root.name == "sweep.run"
        assert tree.trace_id == load_manifest(run)["run_id"]
        names = {n.name for n in tree.nodes.values()}
        assert "cell.run" in names and "shard.run" in names

    def test_worker_spans_hang_under_the_sweep_root(self, run):
        """Spans emitted in forked worker processes (different pid)
        still parent under the supervisor's sweep span — the context
        rode the assign message."""
        tree = load_tree(run)
        (root,) = tree.roots
        worker_spans = [n for n in tree.nodes.values()
                        if n.pid != root.pid]
        assert worker_spans, "expected spans from forked workers"

    def test_critical_path_total_matches_sweep_duration(self, run):
        summary = trace_summary(run)
        (entry,) = summary["roots"]
        assert entry["root_dur_s"] > 0
        assert abs(entry["path_total_s"] - entry["root_dur_s"]) \
            <= 0.05 * entry["root_dur_s"]

    def test_trace_cli_renders_and_exits_zero(self, run, capsys):
        assert cli_main(["trace", run]) == 0
        out = capsys.readouterr().out
        assert "sweep.run" in out and "critical path" in out
        assert cli_main(["trace", run, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["roots"][0]["critical_path"]

    def test_report_json_cli(self, run, capsys):
        assert cli_main(["report", os.path.dirname(run), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["runs"]) == 1
        assert data["runs"][0]["cells"]


# ----------------------------------------------------------------------
# remote clock skew normalization
# ----------------------------------------------------------------------
@needs_loopback
class TestClockSkew:
    SKEW = 1000.0

    def _fake_runner(self, listener, bd):
        from repro.runtime.checkpoint import encode_result

        conn, _ = listener.accept()
        hello = recv_frame(conn)
        send_frame(conn, {"t": "welcome", "pid": 4242,
                          "release": hello["release"],
                          "now": time.time() + self.SKEW})
        while True:
            try:
                msg = recv_frame(conn)
            except Exception:
                return
            if msg.get("t") != "run":
                return
            records = [{"v": 1, "kind": "span", "t": time.time() + self.SKEW,
                        "pid": 4242, "seq": 0, "name": "cell.run",
                        "dur_s": 0.01, "status": "ok",
                        "attrs": {"cell": [msg["task"]]}}]
            ctx = msg.get("ctx") or {}
            if ctx.get("trace_id"):
                records[0]["trace_id"] = ctx["trace_id"]
                records[0]["span_id"] = f"feedbeef0000000{msg['idx']}"
                records[0]["parent_id"] = ctx.get("parent_id")
            send_frame(conn, {"t": "reply", "idx": msg["idx"], "ok": True,
                              "payload": encode_result(bd),
                              "records": records})

    def test_remote_record_times_normalized_on_ingest(self):
        from repro.classify.breakdown import DuboisBreakdown

        bd = DuboisBreakdown(pc=1, cts=2, cfs=3, pts=4, pfs=5,
                             data_refs=60)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        port = listener.getsockname()[1]
        server = threading.Thread(target=self._fake_runner,
                                  args=(listener, bd), daemon=True)
        server.start()
        rec = Recorder.buffering()
        rec.set_trace_context("run-skew")
        try:
            with use_recorder(rec):
                spec = {"proto": 1, "release": "x", "journal_v": 0,
                        "kernel": "interpreted", "trace_key": "k",
                        "workload": "w"}
                tr = TcpTransport(
                    [("127.0.0.1", port)], spec,
                    reconnect=RetryPolicy(max_attempts=2, base_delay=0.01,
                                          max_delay=0.05))
                sup = Supervisor(lambda t: bd, jobs=1, transports=[tr],
                                 timeout=10.0)
                before = time.time()
                assert sup.run(["cell-a", "cell-b"]) == [bd, bd]
                after = time.time()
        finally:
            listener.close()
        server.join(timeout=10.0)
        records = rec.drain()
        connected = [r for r in records if r.get("name") == "host.connected"]
        assert connected and abs(connected[0]["attrs"]["clock_skew_s"]
                                 - self.SKEW) < 5.0
        spans = [r for r in records if r.get("kind") == "span"]
        assert len(spans) == 2
        for span in spans:
            # The +1000s remote timestamp came back inside the local
            # window.
            assert before - 5.0 <= span["t"] <= after + 5.0
            assert span["attrs"]["host"].startswith("127.0.0.1:")
            assert span["trace_id"] == "run-skew"


# ----------------------------------------------------------------------
# kernel diff and history
# ----------------------------------------------------------------------
class TestDiffAndHistory:
    @pytest.fixture(scope="class")
    def runs(self, trace, tmp_path_factory):
        """The same grid twice: interpreted baseline, then vectorized."""
        from repro.analysis.engine import SweepEngine

        pytest.importorskip("numpy")
        out = {}
        for kernel in ("interpreted", "vectorized"):
            tel = str(tmp_path_factory.mktemp(f"tel-{kernel}"))
            engine = SweepEngine(trace, telemetry_dir=tel, kernel=kernel)
            engine.classify_sweep(SIZES)
            (out[kernel],) = find_runs(tel)
        return out

    def test_diff_flags_kernel_speedup_on_hot_cells(self, runs):
        diff = diff_runs(runs["interpreted"], runs["vectorized"],
                         threshold=0.2, min_seconds=0.0)
        assert diff["improvements"], \
            "vectorized run should beat interpreted on some cell"
        flagged = {tuple(r["cell"]) for r in diff["improvements"]}
        assert any(cell[1] == min(SIZES) for cell in flagged), \
            "the hot (smallest-block) cell should be flagged"
        for row in diff["improvements"]:
            assert row["kernel_a"] == "interpreted"
            assert row["kernel_b"] == "vectorized"
            assert row["delta_pct"] < 0
        text = render_diff(diff)
        assert "faster" in text

    def test_diff_cli_and_fail_on_regress(self, runs, capsys):
        assert cli_main(["diff", runs["interpreted"],
                         runs["vectorized"]]) == 0
        capsys.readouterr()
        # Reversed: the interpreted run is the regression.
        assert cli_main(["diff", runs["vectorized"], runs["interpreted"],
                         "--min-seconds", "0", "--fail-on-regress"]) == 1
        out = capsys.readouterr().out
        assert "SLOWER" in out
        assert cli_main(["diff", runs["interpreted"], runs["vectorized"],
                         "--min-seconds", "0", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["improvements"]

    def test_diff_accepts_report_json_files(self, runs, tmp_path,
                                            capsys):
        paths = {}
        for kernel, run in runs.items():
            assert cli_main(["report", run, "--json"]) == 0
            path = tmp_path / f"{kernel}.json"
            path.write_text(capsys.readouterr().out)
            paths[kernel] = str(path)
        diff = diff_runs(paths["interpreted"], paths["vectorized"],
                         min_seconds=0.0)
        assert diff["improvements"]

    def test_history_record_show_and_regression_flag(self, runs,
                                                     tmp_path, capsys):
        hist = str(tmp_path / "hist.jsonl")
        # Three fast baselines, then the slow interpreted run last.
        for _ in range(3):
            assert cli_main(["history", "record", runs["vectorized"],
                             "--file", hist]) == 0
        assert cli_main(["history", "record", runs["interpreted"],
                         "--file", hist]) == 0
        capsys.readouterr()
        assert cli_main(["history", "show", "--file", hist,
                         "--fail-on-regress"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert cli_main(["history", "show", "--file", hist,
                         "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["regressions"]
        assert all(c["verdict"] in ("regression", "stable", "baseline",
                                    "improvement")
                   for c in data["cells"])

    def test_history_tolerates_torn_lines(self, tmp_path):
        hist = str(tmp_path / "torn.jsonl")
        entry = {"v": 1, "run_id": "r1", "outcome": "completed",
                 "duration_s": 1.0,
                 "cells": [{"trace_key": "k", "cell": ["c", 32, "x"],
                            "status": "done", "duration_s": 0.5}]}
        append_history(hist, entry)
        with open(hist, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "run_id": "torn", "cel')
        assert [e["run_id"] for e in load_history(hist)] == ["r1"]

    def test_check_regressions_uses_trailing_median(self):
        def entry(run_id, dur):
            return {"v": 1, "run_id": run_id,
                    "cells": [{"trace_key": "k", "cell": ["c", 32, "x"],
                               "status": "done", "duration_s": dur}]}
        stable = [entry(f"r{i}", 1.0) for i in range(4)]
        # One noisy spike in the middle must not poison the median.
        stable[2] = entry("r2", 30.0)
        summary = check_regressions(stable + [entry("rN", 2.0)],
                                    threshold=0.25)
        (cell,) = summary["cells"]
        assert cell["median_s"] == 1.0
        assert cell["verdict"] == "regression"
        ok = check_regressions(stable + [entry("rN", 1.1)],
                               threshold=0.25)
        assert ok["cells"][0]["verdict"] == "stable"
        assert ok["regressions"] == []

    def test_history_baseline_needs_two_prior_runs(self):
        def entry(run_id, dur):
            return {"v": 1, "run_id": run_id,
                    "cells": [{"trace_key": "k", "cell": ["c", 32, "x"],
                               "status": "done", "duration_s": dur}]}
        summary = check_regressions([entry("r0", 1.0), entry("r1", 9.0)])
        assert summary["cells"][0]["verdict"] == "baseline"
        assert render_history(dict(summary, path="p"))


# ----------------------------------------------------------------------
# malformed run directories
# ----------------------------------------------------------------------
class TestMalformedRuns:
    @pytest.fixture()
    def telemetry(self, trace, tmp_path):
        from repro.analysis.engine import SweepEngine

        tel = str(tmp_path / "tel")
        engine = SweepEngine(trace, telemetry_dir=tel)
        engine.classify_sweep((SIZES[0],))
        return tel

    def test_truncated_manifest_skipped_with_warning(self, telemetry,
                                                     caplog, capsys):
        (good,) = find_runs(telemetry)
        torn = os.path.join(telemetry, "run-19990101T000000-p1-0")
        os.makedirs(torn)
        with open(os.path.join(good, "manifest.json")) as fh:
            payload = fh.read()
        with open(os.path.join(torn, "manifest.json"), "w") as fh:
            fh.write(payload[: len(payload) // 2])  # half-written
        assert load_manifest(torn, strict=False) is None
        with pytest.raises(ReproError):
            load_manifest(torn)
        with caplog.at_level("WARNING", logger="repro"):
            summary = report_summary(telemetry)
        assert [r["run_dir"] for r in summary["runs"]] == [good]
        assert any("malformed" in m for m in caplog.messages)
        assert cli_main(["report", telemetry]) == 0

    def test_all_runs_malformed_is_an_error(self, tmp_path):
        tel = tmp_path / "tel"
        bad = tel / "run-19990101T000000-p1-0"
        bad.mkdir(parents=True)
        (bad / "manifest.json").write_text("{\"v\": 1, \"run")
        with pytest.raises(ReproError, match="all malformed"):
            report_summary(str(tel))


# ----------------------------------------------------------------------
# per-host aggregation (injected host loss)
# ----------------------------------------------------------------------
class TestPerHostAggregation:
    HOSTS = ("127.0.0.1:7001", "127.0.0.1:7002")

    @pytest.fixture()
    def manifest(self, tmp_path):
        """A synthetic two-endpoint sweep: host 2 dies mid-run and its
        cell is retried on host 1."""
        h1, h2 = self.HOSTS
        with RunTelemetry(str(tmp_path)) as run:
            rec = run.recorder
            rec.event("host.connected", host=h1, clock_skew_s=0.001)
            rec.event("host.connected", host=h2, clock_skew_s=-0.2)
            rec.event("sweep.start", trace="T", trace_key="T-k",
                      num_procs=4, events=100, cells=2)
            for host, block in ((h1, 32), (h2, 64)):
                rec.event("task.assigned", cell=["classify", block, "x"],
                          host=host, where="remote")
            rec.span_complete("cell.run", 0.5,
                              cell=["classify", 32, "x"], rows=4,
                              host=h1)
            rec.event("task.done", cell=["classify", 32, "x"],
                      attempt=1, host=h1)
            rec.event("host.lost", level="warning", host=h2,
                      cell=["classify", 64, "x"])
            rec.event("task.failed", level="warning",
                      cell=["classify", 64, "x"],
                      fail_kind="host_lost", action="retry")
            rec.event("task.assigned", cell=["classify", 64, "x"],
                      host=h1, where="remote")
            rec.span_complete("cell.run", 0.7,
                              cell=["classify", 64, "x"], rows=4,
                              host=h1)
            rec.event("task.done", cell=["classify", 64, "x"],
                      attempt=2, host=h1)
            rec.event("sweep.finish", trace_key="T-k", cells=2)
        return load_manifest(run.directory)

    def test_host_losses_counted(self, manifest):
        assert manifest["counters"]["host_losses"] == 1

    def test_per_host_cell_counts(self, manifest):
        h1, h2 = self.HOSTS
        hosts = manifest["hosts"]
        assert hosts[h1] == {"connected": 1, "assigned": 2,
                             "cells_done": 2, "losses": 0, "dropped": 0}
        assert hosts[h2] == {"connected": 1, "assigned": 1,
                             "cells_done": 0, "losses": 1, "dropped": 0}

    def test_cells_carry_host_attr(self, manifest):
        for cell in manifest["cells"]:
            assert cell["host"] == self.HOSTS[0]

    def test_report_renders_host_table(self, manifest, tmp_path):
        (run_dir,) = find_runs(str(tmp_path))
        text = render_run(run_dir)
        for host in self.HOSTS:
            assert host in text
        assert "losses" in text and "dropped" in text


# ----------------------------------------------------------------------
# the distributed acceptance: loopback TCP sweep -> one rooted tree
# ----------------------------------------------------------------------
@needs_loopback
class TestRemoteSweepTree:
    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        import re
        import subprocess
        import sys

        from repro.analysis.engine import SweepEngine

        cache = str(tmp_path_factory.mktemp("cache"))
        tel = str(tmp_path_factory.mktemp("tel"))
        procs = []
        try:
            addrs = []
            for _ in range(2):
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro.runtime.remote_worker",
                     "--listen", "127.0.0.1:0", "--slots", "4",
                     "--trace-cache", cache],
                    stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                    text=True, start_new_session=True)
                procs.append(proc)
                line = proc.stdout.readline()
                m = re.search(r"listening on ([\d.]+):(\d+)", line or "")
                assert m, f"runner failed to start: {line!r}"
                addrs.append(f"{m.group(1)}:{m.group(2)}")
            engine = SweepEngine.for_workload(
                "MATMUL24", cache_dir=cache, jobs=1, shards=2,
                timeout=60.0, hosts=",".join(addrs), telemetry_dir=tel)
            engine.run_grid([("classify", 32, "dubois"),
                             ("classify", 64, "dubois"),
                             ("compare", 32, None),
                             ("protocol", 64, "SD")])
            (run_dir,) = find_runs(tel)
            yield run_dir
        finally:
            import signal as _signal

            for proc in procs:
                try:
                    os.killpg(os.getpgid(proc.pid), _signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
                proc.wait(timeout=10)
                if proc.stdout is not None:
                    proc.stdout.close()

    def test_remote_sweep_reconstructs_single_rooted_tree(self, run):
        tree = load_tree(run)
        assert tree.untraced == 0
        assert tree.orphans == []
        (root,) = tree.roots
        assert root.name == "sweep.run"
        remote = [n for n in tree.nodes.values()
                  if (n.attrs or {}).get("host")]
        assert remote, "expected spans ingested from remote hosts"
        for node in remote:
            assert node.attrs["host"].startswith("127.0.0.1:")

    def test_remote_span_times_inside_local_window(self, run):
        """Skew normalization: every remote span's wall time sits inside
        the locally timed sweep root (generously padded)."""
        tree = load_tree(run)
        (root,) = tree.roots
        for node in tree.nodes.values():
            assert node.start >= root.start - 5.0
            assert node.end <= root.end + 5.0

    def test_critical_path_within_5pct_of_sweep_span(self, run):
        summary = trace_summary(run)
        (entry,) = summary["roots"]
        assert abs(entry["path_total_s"] - entry["root_dur_s"]) \
            <= 0.05 * entry["root_dur_s"]

    def test_trace_cli_names_cells(self, run, capsys):
        assert cli_main(["trace", run]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "host=127.0.0.1:" in out
