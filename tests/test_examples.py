"""Integration tests: every shipped example runs end to end.

The examples are part of the public deliverable; these tests import each
one and drive its ``main`` with small arguments so the suite stays fast.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "essential misses: 3" in out
        assert "Torrellas" in out

    def test_false_sharing_hunt(self, capsys):
        load_example("false_sharing_hunt").main()
        out = capsys.readouterr().out
        assert "FALSE sharing" in out
        assert "Padding eliminated" in out

    def test_protocol_comparison_small(self, capsys):
        load_example("protocol_comparison").main("MATMUL24", 64)
        out = capsys.readouterr().out
        assert "Essential miss rate" in out
        for proto in ("MIN", "OTF", "SRD", "MAX"):
            assert proto in out

    def test_block_size_sweep_small(self, capsys):
        load_example("block_size_sweep").main("MATMUL24")
        out = capsys.readouterr().out
        assert "Verified (paper section 2.1)" in out

    def test_custom_workload(self, capsys):
        load_example("custom_workload").main()
        out = capsys.readouterr().out
        assert "Race check: PASSED" in out
        assert "USELESS" in out or "delaying protocols" in out

    def test_classification_showdown(self, capsys):
        load_example("classification_showdown").main()
        out = capsys.readouterr().out
        assert "WBWI's actual miss rate" in out
        assert "single-touch" in out or "cold" in out

    def test_miss_attribution(self, capsys):
        load_example("miss_attribution").main(64)
        out = capsys.readouterr().out
        assert "particle" in out
        assert "Top false-sharing regions" in out
