"""Unit tests for the happens-before race detector."""

import pytest

from repro.errors import DataRaceError
from repro.trace import TraceBuilder
from repro.trace.validate import (
    assert_race_free,
    check_races,
    sync_pairs_balanced,
)


class TestBasicRaces:
    def test_unsynchronized_write_read_is_racy(self):
        t = TraceBuilder(2).store(0, 5).load(1, 5).build()
        assert not check_races(t).is_race_free

    def test_unsynchronized_write_write_is_racy(self):
        t = TraceBuilder(2).store(0, 5).store(1, 5).build()
        assert not check_races(t).is_race_free

    def test_read_read_is_not_racy(self):
        t = TraceBuilder(2).load(0, 5).load(1, 5).build()
        assert check_races(t).is_race_free

    def test_same_processor_never_races(self):
        t = TraceBuilder(1).store(0, 5).load(0, 5).store(0, 5).build()
        assert check_races(t).is_race_free

    def test_different_words_never_race(self):
        t = TraceBuilder(2).store(0, 5).store(1, 6).build()
        assert check_races(t).is_race_free

    def test_racy_read_then_write_detected(self):
        t = TraceBuilder(2).load(0, 5).store(1, 5).build()
        assert not check_races(t).is_race_free


class TestSynchronization:
    def test_lock_protected_accesses_are_ordered(self):
        t = (TraceBuilder(2)
             .acquire(0, 100).store(0, 5).release(0, 100)
             .acquire(1, 100).load(1, 5).release(1, 100)
             .build())
        assert check_races(t).is_race_free

    def test_flag_style_release_acquire_orders(self):
        # producer stores data then releases flag; consumer acquires then reads
        t = (TraceBuilder(2)
             .store(0, 5).release(0, 200)
             .acquire(1, 200).load(1, 5)
             .build())
        assert check_races(t).is_race_free

    def test_wrong_sync_variable_does_not_order(self):
        t = (TraceBuilder(2)
             .store(0, 5).release(0, 200)
             .acquire(1, 201).load(1, 5)
             .build())
        assert not check_races(t).is_race_free

    def test_acquire_before_release_does_not_order(self):
        # consumer acquires *before* the producer's release: no edge
        t = (TraceBuilder(2)
             .acquire(1, 200)
             .store(0, 5).release(0, 200)
             .load(1, 5)
             .build())
        assert not check_races(t).is_race_free

    def test_transitive_ordering_through_third_party(self):
        t = (TraceBuilder(3)
             .store(0, 5).release(0, 200)
             .acquire(1, 200).release(1, 201)
             .acquire(2, 201).load(2, 5)
             .build())
        assert check_races(t).is_race_free

    def test_write_after_synchronized_read_needs_own_sync(self):
        t = (TraceBuilder(2)
             .load(1, 5)
             .store(0, 5)
             .build())
        assert not check_races(t).is_race_free


class TestReporting:
    def test_reports_conflicting_pair(self):
        t = TraceBuilder(2).store(0, 5).load(1, 5).build()
        report = check_races(t)
        (i1, e1), (i2, e2) = report.races[0]
        assert (i1, i2) == (0, 1)
        assert e1 == (0, 1, 5) and e2 == (1, 0, 5)

    def test_max_races_caps_collection(self):
        b = TraceBuilder(2)
        for w in range(40):
            b.store(0, w).store(1, w)
        report = check_races(b.build(), max_races=5)
        assert len(report.races) == 5

    def test_describe_mentions_events(self):
        t = TraceBuilder(2).store(0, 5).load(1, 5).build()
        text = check_races(t).describe()
        assert "STORE" in text and "LOAD" in text

    def test_describe_race_free(self):
        assert check_races(TraceBuilder(1).load(0, 0).build()).describe() \
            == "race-free"

    def test_assert_race_free_raises(self):
        t = TraceBuilder(2).store(0, 5).load(1, 5).build()
        with pytest.raises(DataRaceError):
            assert_race_free(t)

    def test_assert_race_free_passes(self):
        assert_race_free(TraceBuilder(1).store(0, 1).build())


class TestSyncBalance:
    def test_balanced_ok(self):
        t = (TraceBuilder(1).acquire(0, 1).release(0, 1).build())
        assert sync_pairs_balanced(t) is None

    def test_leaked_lock_flagged(self):
        # lock style: the proc releases addr 1 once but acquires it twice
        t = (TraceBuilder(1).acquire(0, 1).release(0, 1).acquire(0, 1)
             .build())
        problem = sync_pairs_balanced(t)
        assert problem is not None and "leaked" in problem

    def test_flag_style_acquire_only_allowed(self):
        # flag style: acquire with no release by the same proc (LU waits)
        t = TraceBuilder(2).release(1, 1).acquire(0, 1).build()
        assert sync_pairs_balanced(t) is None

    def test_flag_style_release_allowed(self):
        t = TraceBuilder(1).release(0, 1).build()
        assert sync_pairs_balanced(t) is None

    def test_nested_locks_ok(self):
        t = (TraceBuilder(1)
             .acquire(0, 1).acquire(0, 2).release(0, 2).release(0, 1)
             .build())
        assert sync_pairs_balanced(t) is None
