"""Differential tests: optimized classifier vs the Appendix A transliteration.

:class:`~repro.classify.reference.ReferenceDuboisClassifier` is the
executable specification — a line-by-line rendering of the paper's
pseudocode.  The production classifier replaces its per-word C-flag masks
with a store-epoch scheme and adds inlined fast paths; these tests pin the
two implementations together, on random traces (hypothesis) and on real
workload prefixes, through both the streaming and the columnar engine path.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.engine import SharedPrecompute
from repro.classify import DuboisClassifier, ReferenceDuboisClassifier
from repro.mem import BlockMap
from repro.trace.events import LOAD, STORE
from repro.trace.trace import Trace
from repro.workloads.registry import SMALL_SUITE, make_workload

MAX_PROCS = 4
MAX_WORDS = 16


@st.composite
def traces(draw, max_events=60):
    n = draw(st.integers(1, max_events))
    nproc = draw(st.integers(1, MAX_PROCS))
    events = [
        (draw(st.integers(0, nproc - 1)),
         draw(st.sampled_from((LOAD, STORE))),
         draw(st.integers(0, MAX_WORDS - 1)))
        for _ in range(n)
    ]
    return Trace(events, nproc, validate=False)


@given(traces(), st.sampled_from((4, 8, 16, 32, 64)))
@settings(max_examples=200, deadline=None)
def test_optimized_matches_reference_on_random_traces(trace, bb):
    bm = BlockMap(bb)
    assert (DuboisClassifier.classify_trace(trace, bm)
            == ReferenceDuboisClassifier.classify_trace(trace, bm))


@pytest.mark.parametrize("block_bytes", (4, 64, 1024))
@pytest.mark.parametrize("name", SMALL_SUITE)
def test_optimized_matches_reference_on_workloads(name, block_bytes):
    full = make_workload(name).generate()
    trace = Trace(full.events[:6000], full.num_procs, name=name, copy=False)
    bm = BlockMap(block_bytes)
    expected = ReferenceDuboisClassifier.classify_trace(trace, bm)
    assert DuboisClassifier.classify_trace(trace, bm) == expected
    # The engine path (prefilter + shared precompute) must agree too.
    pre = SharedPrecompute(trace)
    assert pre.run_classifier("dubois", block_bytes) == expected


def test_reference_rejects_bad_opcode():
    clf = ReferenceDuboisClassifier(1, BlockMap(16))
    with pytest.raises(Exception):
        clf.access(0, 9, 0)
