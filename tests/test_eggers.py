"""Unit tests for the Eggers/Jeremiassen classifier."""

import pytest

from repro.classify import EggersClassifier
from repro.errors import TraceError
from repro.mem import BlockMap
from repro.trace import TraceBuilder
from repro.trace.events import ACQUIRE, LOAD


def run(trace, block_bytes):
    return EggersClassifier.classify_trace(trace, BlockMap(block_bytes))


class TestPaperFigures:
    def test_figure3_column(self, fig3_trace):
        sb = run(fig3_trace, 8)
        assert sb.as_dict() == {"CM": 2, "TSM": 0, "FSM": 1, "data_refs": 7}

    def test_figure4_column(self, fig4_trace):
        sb = run(fig4_trace, 8)
        assert sb.as_dict() == {"CM": 2, "TSM": 0, "FSM": 2, "data_refs": 7}


class TestRules:
    def test_cold_per_block_per_processor(self):
        t = TraceBuilder(2).load(0, 0).load(0, 1).load(1, 0).build()
        sb = run(t, 8)
        assert sb.cold == 2  # one per processor; second P0 load hits

    def test_tsm_when_missed_word_modified_since_invalidation(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0)    # the invalidating reference (word 0)
             .load(0, 0)     # misses on word 0: TSM
             .build())
        sb = run(t, 8)
        assert sb.true_sharing == 1

    def test_invalidating_reference_is_inclusive(self):
        """'modified since (and including) the reference causing the
        invalidation' — the invalidating store's own word counts."""
        t = TraceBuilder(2).load(0, 1).store(1, 1).load(0, 1).build()
        assert run(t, 8).true_sharing == 1

    def test_fsm_when_missed_word_not_in_window(self):
        t = (TraceBuilder(2)
             .load(0, 1)
             .store(1, 0)    # invalidates P0; window = {word 0}
             .load(0, 1)     # misses on word 1: FSM
             .build())
        sb = run(t, 8)
        assert sb.false_sharing == 1

    def test_window_accumulates_while_invalid(self):
        t = (TraceBuilder(2)
             .load(0, 1)
             .store(1, 0)    # invalidates; window {0}
             .store(1, 1)    # still invalid; window {0,1}
             .load(0, 1)     # word 1 in window: TSM
             .build())
        assert run(t, 8).true_sharing == 1

    def test_window_resets_after_refetch(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 1)    # window {1}
             .load(0, 0)     # FSM; refetch clears window
             .store(1, 1)    # new window {1}
             .load(0, 0)     # FSM again (word 0 not written since)
             .build())
        sb = run(t, 8)
        assert sb.false_sharing == 2 and sb.true_sharing == 0

    def test_misses_classified_at_miss_time_not_lifetime_end(self):
        """Eggers ignores later consumption — the difference from ours."""
        t = (TraceBuilder(2)
             .load(0, 0).load(0, 1)
             .store(1, 1)    # invalidates; window {1}
             .load(0, 0)     # FSM under Eggers...
             .load(0, 1)     # ...even though the new word 1 is used here
             .build())
        sb = run(t, 8)
        assert sb.false_sharing == 1 and sb.true_sharing == 0

    def test_ignores_sync_via_event(self):
        clf = EggersClassifier(2, BlockMap(4))
        clf.event(0, ACQUIRE, 0)
        clf.event(0, LOAD, 0)
        assert clf.finish().data_refs == 1


class TestAPI:
    def test_access_rejects_sync(self):
        clf = EggersClassifier(1, BlockMap(4))
        with pytest.raises(TraceError):
            clf.access(0, ACQUIRE, 0)

    def test_double_finish_rejected(self):
        clf = EggersClassifier(1, BlockMap(4))
        clf.finish()
        with pytest.raises(TraceError):
            clf.finish()

    def test_nonpositive_procs_rejected(self):
        with pytest.raises(TraceError):
            EggersClassifier(0, BlockMap(4))
