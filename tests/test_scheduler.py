"""Unit tests for the simulated multiprocessor scheduler."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.execution import ops
from repro.execution.scheduler import Machine, run_threads
from repro.trace.events import LOAD, STORE


def emitter(proc_word, count):
    def gen():
        for i in range(count):
            yield ops.load(proc_word + i)
    return gen()


class TestBasicExecution:
    def test_single_thread(self):
        m = Machine(1)
        t = m.run([emitter(0, 3)], name="one")
        assert t.events == [(0, LOAD, 0), (0, LOAD, 1), (0, LOAD, 2)]
        assert t.meta["cycles"] == 3

    def test_parallel_threads_interleave(self):
        m = Machine(2, order="fixed")
        t = m.run([emitter(0, 2), emitter(10, 2)])
        assert t.events == [(0, LOAD, 0), (1, LOAD, 10),
                            (0, LOAD, 1), (1, LOAD, 11)]
        # two 2-event threads run in 2 cycles on 2 processors
        assert t.meta["cycles"] == 2

    def test_rotate_order_is_fair(self):
        m = Machine(2, order="rotate")
        t = m.run([emitter(0, 2), emitter(10, 2)])
        procs = [ev[0] for ev in t.events]
        assert procs == [0, 1, 1, 0]

    def test_random_order_deterministic_by_seed(self):
        a = Machine(3, order="random", seed=1).run(
            [emitter(0, 4), emitter(10, 4), emitter(20, 4)])
        b = Machine(3, order="random", seed=1).run(
            [emitter(0, 4), emitter(10, 4), emitter(20, 4)])
        assert a.events == b.events

    def test_fewer_threads_than_procs(self):
        m = Machine(4)
        t = m.run([emitter(0, 2)])
        assert len(t) == 2
        assert t.num_procs == 4

    def test_too_many_threads_rejected(self):
        with pytest.raises(SimulationError):
            Machine(1).run([emitter(0, 1), emitter(1, 1)])

    def test_unequal_lengths(self):
        m = Machine(2, order="fixed")
        t = m.run([emitter(0, 1), emitter(10, 3)])
        assert len(t) == 4


class TestBlocking:
    def test_block_until_waits(self):
        state = {"go": False}

        def waiter():
            yield ops.block_until(lambda: state["go"])
            yield ops.load(1)

        def setter():
            yield ops.load(0)
            state["go"] = True
            yield ops.load(2)

        t = Machine(2, order="fixed").run([waiter(), setter()])
        addrs = [a for _, _, a in t.events]
        assert addrs.index(1) > addrs.index(0)

    def test_true_predicate_costs_nothing(self):
        def t0():
            yield ops.block_until(lambda: True)
            yield ops.load(0)

        t = Machine(1).run([t0()])
        assert t.meta["cycles"] == 1

    def test_deadlock_detected(self):
        def stuck():
            yield ops.block_until(lambda: False)

        with pytest.raises(DeadlockError):
            Machine(1).run([stuck()])

    def test_mutual_wait_deadlock(self):
        a_done = {"v": False}
        b_done = {"v": False}

        def a():
            yield ops.block_until(lambda: b_done["v"])
            a_done["v"] = True
            yield ops.load(0)

        def b():
            yield ops.block_until(lambda: a_done["v"])
            b_done["v"] = True
            yield ops.load(1)

        with pytest.raises(DeadlockError):
            Machine(2).run([a(), b()])

    def test_unblock_then_reblock_is_not_deadlock(self):
        """Regression: a thread may satisfy another's predicate with
        non-emitting code and immediately re-block; that cycle must not be
        reported as a deadlock."""
        stage = {"n": 0}

        def a():
            yield ops.load(0)
            stage["n"] = 1          # runs on the resume after load(0)
            yield ops.block_until(lambda: stage["n"] == 2)
            yield ops.load(1)

        def b():
            yield ops.block_until(lambda: stage["n"] == 1)
            stage["n"] = 2
            yield ops.load(2)

        t = Machine(2, order="fixed").run([a(), b()])
        assert len(t) == 3


class TestValidation:
    def test_malformed_op_rejected(self):
        def bad():
            yield ("bogus", 1)

        with pytest.raises(SimulationError):
            Machine(1).run([bad()])

    def test_bad_mem_opcode_rejected(self):
        def bad():
            yield (ops.MEM, 9, 0)

        with pytest.raises(SimulationError):
            Machine(1).run([bad()])

    def test_bad_sync_opcode_rejected(self):
        def bad():
            yield (ops.SYNC, 0, 0)

        with pytest.raises(SimulationError):
            Machine(1).run([bad()])

    def test_max_cycles_guard(self):
        def forever():
            while True:
                yield ops.load(0)

        with pytest.raises(SimulationError):
            Machine(1).run([forever()], max_cycles=100)

    def test_bad_order_policy(self):
        with pytest.raises(SimulationError):
            Machine(1, order="zigzag")

    def test_nonpositive_procs(self):
        with pytest.raises(SimulationError):
            Machine(0)


class TestRunThreads:
    def test_factory_wrapper(self):
        def factory(tid):
            def gen():
                yield ops.store(tid)
            return gen()

        t = run_threads(3, factory, name="f")
        assert sorted(a for _, _, a in t.events) == [0, 1, 2]
        assert all(op == STORE for _, op, _ in t.events)
        assert t.name == "f"

    def test_meta_merged(self):
        def factory(tid):
            def gen():
                yield ops.load(0)
            return gen()

        t = run_threads(1, factory, meta={"x": 1})
        assert t.meta["x"] == 1
        assert "cycles" in t.meta
