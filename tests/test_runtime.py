"""Resilience suite: supervisor semantics under deterministic faults.

Covers the acceptance criteria of the fault-tolerant execution layer:

* a worker crash mid-grid is retried and the sweep completes with results
  identical to a clean serial run;
* a hung cell hits the wall-clock timeout, its worker is killed and the
  cell retried;
* exhausted retries raise :class:`~repro.errors.CellFailedError` carrying
  the cell, its attempt history and the partial grid results;
* cells that fail repeatedly in workers degrade to a serial in-process
  fallback;
* a sweep killed mid-grid resumes from the checkpoint journal, re-running
  only the incomplete cells (verified by journal inspection).

Every fault is injected through :class:`repro.runtime.FaultPlan`, keyed
by ``(cell, attempt)``, so each scenario replays identically.
"""

import json
import os

import pytest

from repro.analysis.engine import ExecutionOptions, SweepEngine, _resolve_jobs
from repro.classify.breakdown import DuboisBreakdown, SimpleBreakdown
from repro.classify.compare import ClassificationComparison
from repro.errors import CellFailedError, ConfigError, InvariantViolationError
from repro.protocols.results import Counters, ProtocolResult
from repro.runtime import (
    CheckpointJournal,
    FaultInjectedError,
    FaultPlan,
    RetryPolicy,
    Supervisor,
)
from repro.runtime.checkpoint import decode_result, encode_result
from repro.trace.trace import Trace
from repro.workloads.registry import make_workload

#: Block sizes of the Figure-5-style acceptance sweep.
SIZES = (4, 16, 64, 256, 1024)

#: Fast retry policy so fault scenarios stay sub-second.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


@pytest.fixture(scope="module")
def trace():
    """A deterministic prefix of MP3D200 (structure without scale)."""
    full = make_workload("MP3D200").generate()
    return Trace(full.events[:6000], full.num_procs, name="MP3D200",
                 copy=False)


@pytest.fixture(scope="module")
def clean_sweep(trace):
    """The clean serial Figure-5 sweep every fault run must reproduce."""
    return SweepEngine(trace).classify_sweep(SIZES)


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_capped_exponential_delays(self):
        p = RetryPolicy(max_attempts=5, base_delay=0.1, backoff=2.0,
                        max_delay=0.5)
        assert p.delay(1) == pytest.approx(0.1)
        assert p.delay(2) == pytest.approx(0.2)
        assert p.delay(3) == pytest.approx(0.4)
        assert p.delay(4) == pytest.approx(0.5)  # capped
        assert p.delay(10) == pytest.approx(0.5)

    def test_from_retries(self):
        assert RetryPolicy.from_retries(2).max_attempts == 3

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)

    def test_jitter_off_by_default_stays_deterministic(self):
        p = RetryPolicy(max_attempts=5, base_delay=0.1, backoff=2.0,
                        max_delay=0.5)
        assert not p.jitter
        # The exact capped-exponential schedule, attempt-indexed and
        # replayable — the property the fault-injection suites rely on.
        assert [p.delay(i) for i in (1, 2, 3, 1)] == \
            pytest.approx([0.1, 0.2, 0.4, 0.1])

    def test_decorrelated_jitter_bounded_and_seeded(self):
        p = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=0.5,
                        jitter=True, jitter_seed=42)
        seq = [p.delay(i) for i in range(1, 9)]
        assert all(0.1 <= d <= 0.5 for d in seq)
        # Same seed replays the same schedule; a different seed's walk
        # diverges (that divergence is the de-synchronization point).
        replay = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=0.5,
                             jitter=True, jitter_seed=42)
        assert [replay.delay(i) for i in range(1, 9)] == seq
        other = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=0.5,
                            jitter=True, jitter_seed=43)
        assert [other.delay(i) for i in range(1, 9)] != seq
        with pytest.raises(ConfigError):
            RetryPolicy(backoff=0.5)


# ----------------------------------------------------------------------
# supervisor semantics (fault-injection hooks)
# ----------------------------------------------------------------------
class TestSupervisor:
    def test_serial_matches_map(self):
        sup = Supervisor(lambda x: x * x, jobs=1)
        assert sup.run([1, 2, 3]) == [1, 4, 9]

    def test_forked_matches_map(self):
        sup = Supervisor(lambda x: x * x, jobs=2)
        assert sup.run(list(range(8))) == [x * x for x in range(8)]

    def test_completed_tasks_are_skipped(self):
        calls = []

        def runner(x):
            calls.append(x)
            return x + 10

        sup = Supervisor(runner, jobs=1)
        out = sup.run([1, 2, 3], completed={2: 99})
        assert out == [11, 99, 13]
        assert calls == [1, 3]

    def test_on_result_fires_per_fresh_task(self):
        seen = []
        sup = Supervisor(lambda x: x + 1, jobs=1)
        sup.run([5, 6], completed={5: 0},
                on_result=lambda task, res: seen.append((task, res)))
        assert seen == [(6, 7)]

    def test_serial_retries_then_raises_with_partials(self):
        plan = FaultPlan(raises={1: 99})  # task index 1 always fails
        sup = Supervisor(lambda x: x, jobs=1, retry=FAST_RETRY,
                         fault_plan=plan)
        with pytest.raises(CellFailedError) as exc_info:
            sup.run(["a", "b", "c"])
        err = exc_info.value
        assert err.cell == "b"
        assert len(err.attempts) == FAST_RETRY.max_attempts
        assert all(a["where"] == "serial" for a in err.attempts)
        assert err.partial == {"a": "a"}  # completed before the failure


class TestEngineFaults:
    def test_worker_crash_mid_grid_retries_and_completes(self, trace,
                                                         clean_sweep):
        plan = FaultPlan(crash={1: 1})  # kill the 2nd cell's worker once
        engine = SweepEngine(trace, jobs=3, retry=FAST_RETRY,
                             fault_plan=plan)
        assert engine.classify_sweep(SIZES) == clean_sweep

    def test_hang_hits_timeout_and_retries(self, trace, clean_sweep):
        plan = FaultPlan(hang={2: 1})  # 3rd cell hangs on its 1st attempt
        engine = SweepEngine(trace, jobs=3, timeout=2.0, retry=FAST_RETRY,
                             fault_plan=plan)
        assert engine.classify_sweep(SIZES) == clean_sweep

    def test_crash_and_hang_together_match_clean_serial(self, trace,
                                                        clean_sweep):
        """The acceptance scenario: injected crash-on-Nth-cell plus an
        injected per-cell hang; results identical to a clean serial run."""
        plan = FaultPlan(crash={1: 1}, hang={3: 1})
        engine = SweepEngine(trace, jobs=3, timeout=2.0, retry=FAST_RETRY,
                             fault_plan=plan)
        assert engine.classify_sweep(SIZES) == clean_sweep

    def test_repeated_worker_failures_degrade_to_serial(self, trace,
                                                        clean_sweep):
        # Crash on *every* worker attempt: only the in-process fallback
        # (where crash faults cannot fire) can complete the cell.
        plan = FaultPlan(crash={1: 10_000})
        engine = SweepEngine(trace, jobs=2, retry=FAST_RETRY,
                             fault_plan=plan)
        assert engine.classify_sweep(SIZES) == clean_sweep

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_exhausted_retries_raise_cell_failed(self, trace, jobs):
        # Raise faults fire on the serial path too, so every attempt —
        # including the fallback — fails deterministically.
        plan = FaultPlan(raises={2: 10_000})
        engine = SweepEngine(trace, jobs=jobs, retry=FAST_RETRY,
                             fault_plan=plan)
        with pytest.raises(CellFailedError) as exc_info:
            engine.classify_sweep(SIZES)
        err = exc_info.value
        assert err.cell == ("classify", SIZES[2], "dubois")
        assert err.attempts, "attempt history must be carried"
        assert all("FaultInjectedError" in (a["error"] or "")
                   for a in err.attempts)
        # Partial results carry completed cells, keyed by cell.
        for cell, result in err.partial.items():
            assert cell[0] == "classify"
            assert isinstance(result, DuboisBreakdown)

    def test_fault_injected_error_is_reproducible(self):
        plan = FaultPlan(raises={("x",): 1})
        with pytest.raises(FaultInjectedError):
            plan.apply_serial(("x",), 1)
        plan.apply_serial(("x",), 2)  # second attempt passes

    def test_shard_worker_crash_recovers_bit_identical(self, trace):
        """A killed *shard* worker is retried like any cell; the merged
        result stays bit-identical to the unsharded run."""
        from repro.protocols.runner import run_protocol

        clean = run_protocol("SD", trace, 64)
        cells = [("protocol", 64, "SD")]
        # One cell, three shards: the expanded task list is the three
        # shard subtasks, so index 1 is the middle shard's worker.
        plan = FaultPlan(crash={1: 1})
        engine = SweepEngine(trace, jobs=2, shards=3, retry=FAST_RETRY,
                             fault_plan=plan)
        assert engine.run_grid(cells) == [clean]

    def test_shard_worker_hang_recovers_bit_identical(self, trace):
        from repro.protocols.runner import run_protocol

        clean = run_protocol("MAX", trace, 64)
        plan = FaultPlan(hang={0: 1})  # first shard hangs once
        engine = SweepEngine(trace, jobs=2, shards=2, timeout=2.0,
                             retry=FAST_RETRY, fault_plan=plan)
        assert engine.run_grid([("protocol", 64, "MAX")]) == [clean]

    def test_shard_crash_with_checkpoint_resumes(self, tmp_path, trace):
        """Crash-until-fallback on a shard cell, with journaling on: the
        sweep completes (serial fallback) and a resume re-runs nothing."""
        from repro.protocols.runner import run_protocol

        ckpt = str(tmp_path)
        clean = run_protocol("OTF", trace, 64)
        plan = FaultPlan(crash={0: 10_000})
        engine = SweepEngine(trace, jobs=2, shards=2, retry=FAST_RETRY,
                             checkpoint_dir=ckpt, fault_plan=plan)
        assert engine.run_grid([("protocol", 64, "OTF")]) == [clean]
        resumed = SweepEngine(trace, jobs=2, shards=2, retry=FAST_RETRY,
                              checkpoint_dir=ckpt)
        ran = []
        pre = resumed.precompute
        original = pre.run_cell
        pre.run_cell = lambda c: (ran.append(c), original(c))[1]
        assert resumed.run_grid([("protocol", 64, "OTF")]) == [clean]
        assert ran == []


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_result_encoding_round_trips(self):
        bd = DuboisBreakdown(pc=1, cts=2, cfs=3, pts=4, pfs=5, data_refs=60)
        sb = SimpleBreakdown(cold=1, true_sharing=2, false_sharing=3,
                             data_refs=10)
        cmp_ = ClassificationComparison(trace_name="t", block_bytes=64,
                                        ours=bd, eggers=sb, torrellas=sb)
        pr = ProtocolResult(protocol="MIN", trace_name="t", block_bytes=64,
                            num_procs=4, breakdown=bd,
                            counters=Counters(fetches=7, write_throughs=3),
                            replacement_misses=2)
        for obj in (bd, sb, cmp_, pr):
            blob = json.loads(json.dumps(encode_result(obj)))
            assert decode_result(blob) == obj

    def test_killed_sweep_resumes_from_journal(self, tmp_path, trace,
                                               clean_sweep):
        """A sweep killed mid-grid re-runs only the incomplete cells."""
        ckpt = str(tmp_path)
        cells = [("classify", bb, "dubois") for bb in SIZES]
        # Simulate the kill: a first run completes only three cells.
        SweepEngine(trace, checkpoint_dir=ckpt).run_grid(cells[:3])
        engine = SweepEngine(trace, checkpoint_dir=ckpt)
        journal_path = os.path.join(ckpt, f"{engine.trace_key}.jsonl")
        before = open(journal_path, "rb").read()
        assert before.count(b"\n") == 4  # versioned header + 3 records

        ran = []
        pre = engine.precompute
        original = pre.run_cell
        pre.run_cell = lambda cell: (ran.append(cell), original(cell))[1]
        results = engine.run_grid(cells)

        # Journal inspection: the completed prefix is byte-identical and
        # only the two incomplete cells were executed and appended.
        after = open(journal_path, "rb").read()
        assert after.startswith(before)
        assert after.count(b"\n") == len(cells) + 1  # + header
        assert ran == [tuple(c) for c in cells[3:]]
        assert tuple(results) == clean_sweep.breakdowns

    def test_resume_after_cell_failure_skips_journaled_cells(
            self, tmp_path, trace, clean_sweep):
        """CellFailedError mid-grid leaves a usable journal behind."""
        ckpt = str(tmp_path)
        plan = FaultPlan(raises={3: 10_000})
        engine = SweepEngine(trace, jobs=1, retry=FAST_RETRY,
                             checkpoint_dir=ckpt, fault_plan=plan)
        with pytest.raises(CellFailedError):
            engine.classify_sweep(SIZES)
        # A healthy engine over the same trace+checkpoint finishes the rest.
        healthy = SweepEngine(trace, checkpoint_dir=ckpt)
        assert healthy.classify_sweep(SIZES) == clean_sweep

    def test_journal_ignores_torn_final_line(self, tmp_path, trace):
        ckpt = str(tmp_path)
        cells = [("classify", bb, "dubois") for bb in SIZES[:2]]
        engine = SweepEngine(trace, checkpoint_dir=ckpt)
        results = engine.run_grid(cells)
        path = os.path.join(ckpt, f"{engine.trace_key}.jsonl")
        with open(path, "ab") as fh:  # torn write from a killed process
            fh.write(b'{"v": 1, "key": "x", "ce')
        journal = CheckpointJournal(ckpt, engine.trace_key)
        completed = journal.load()
        assert completed == {tuple(c): r for c, r in zip(cells, results)}

    def test_journal_keyed_by_trace(self, tmp_path, trace):
        """A different trace key never sees another trace's records."""
        journal = CheckpointJournal(str(tmp_path), "key-a")
        bd = DuboisBreakdown(1, 2, 3, 4, 5, 60)
        journal.record(("classify", 64, "dubois"), bd)
        journal.close()
        assert CheckpointJournal(str(tmp_path), "key-a").load() != {}
        other = CheckpointJournal(str(tmp_path), "key-b")
        assert other.load() == {}

    def test_for_workload_uses_cache_key(self, tmp_path):
        engine = SweepEngine.for_workload(
            "MATMUL24", cache_dir=str(tmp_path / "traces"),
            checkpoint_dir=str(tmp_path / "ckpt"))
        from repro.trace.cache import workload_cache_key
        from repro.workloads.registry import make_workload
        assert engine.trace_key == workload_cache_key(
            make_workload("MATMUL24"))


# ----------------------------------------------------------------------
# invariant guards
# ----------------------------------------------------------------------
class TestInvariantGuards:
    @staticmethod
    def _violating_comparison():
        ours = DuboisBreakdown(pc=1, cts=0, cfs=0, pts=0, pfs=0,
                               data_refs=10)
        eggers = SimpleBreakdown(cold=2, true_sharing=0, false_sharing=0,
                                 data_refs=10)  # totals disagree: 1 vs 2
        return ClassificationComparison(trace_name="t", block_bytes=64,
                                        ours=ours, eggers=eggers,
                                        torrellas=eggers)

    def test_warn_mode_warns(self, trace):
        engine = SweepEngine(trace)
        with pytest.warns(UserWarning, match="invariant violation"):
            engine._guard_cell(("compare", 64, None),
                               self._violating_comparison())

    def test_strict_mode_raises(self, trace):
        engine = SweepEngine(trace, strict_invariants=True)
        with pytest.raises(InvariantViolationError) as exc_info:
            engine._guard_cell(("compare", 64, None),
                               self._violating_comparison())
        assert exc_info.value.violations

    def test_clean_compare_cell_passes(self, trace):
        engine = SweepEngine(trace, strict_invariants=True)
        cells = [("compare", 64, None)]
        (result,) = engine.run_grid(cells)  # must not raise
        assert result.ours.total == result.eggers.total


# ----------------------------------------------------------------------
# options plumbing / job resolution
# ----------------------------------------------------------------------
class TestPlumbing:
    def test_resolve_jobs_respects_affinity(self):
        assert _resolve_jobs(0) == len(os.sched_getaffinity(0))
        assert _resolve_jobs(None) == len(os.sched_getaffinity(0))
        assert _resolve_jobs(5) == 5

    def test_execution_options_thread_through_sweep(self, trace, tmp_path,
                                                    clean_sweep):
        from repro.analysis.sweep import sweep_block_sizes

        options = ExecutionOptions(retry=FAST_RETRY, timeout=30.0,
                                   checkpoint_dir=str(tmp_path))
        got = sweep_block_sizes(trace, SIZES, options=options)
        assert got == clean_sweep
        assert os.listdir(str(tmp_path))  # journal was written

    def test_execution_options_thread_through_protocols(self, trace,
                                                        tmp_path):
        from repro.protocols.runner import run_protocols

        options = ExecutionOptions(checkpoint_dir=str(tmp_path))
        got = run_protocols(trace, 64, ("MIN", "OTF"), options=options)
        plain = run_protocols(trace, 64, ("MIN", "OTF"))
        assert got == plain
        # A second run resumes every cell from the journal.
        ckpt = run_protocols(trace, 64, ("MIN", "OTF"), options=options)
        assert ckpt == plain

    def test_cli_resilience_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["sweep", "MATMUL24", "--timeout", "5", "--retries", "1",
             "--resume", "--strict-invariants"])
        assert args.timeout == 5.0
        assert args.retries == 1
        assert args.resume == ""
        assert args.strict_invariants

    def test_cli_sweep_with_resume(self, tmp_path, capsys):
        from repro.cli import main

        ckpt = str(tmp_path / "ckpt")
        assert main(["sweep", "MATMUL24", "--resume", ckpt,
                     "--retries", "1"]) == 0
        assert "essential%" in capsys.readouterr().out
        assert os.listdir(ckpt)
        # Resumed run: every cell comes from the journal.
        assert main(["sweep", "MATMUL24", "--resume", ckpt]) == 0
        assert "essential%" in capsys.readouterr().out
