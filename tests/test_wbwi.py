"""Unit tests for the WBWI protocol (write-back word invalidate)."""

import pytest

from repro.protocols import run_protocol, run_protocols
from repro.trace import TraceBuilder
from repro.trace.synth import false_sharing_pingpong, producer_consumer


class TestWordInvalidation:
    def test_clean_word_access_hits(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 1)
             .load(0, 0)     # clean word: hit, unlike OTF
             .build())
        wbwi = run_protocol("WBWI", t, 8)
        otf = run_protocol("OTF", t, 8)
        assert wbwi.misses == 2
        assert otf.misses == 3

    def test_dirty_word_access_misses(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 1)
             .load(0, 1)
             .build())
        r = run_protocol("WBWI", t, 8)
        assert r.misses == 3
        assert r.breakdown.pts == 1


class TestOwnership:
    def test_store_to_non_owned_dirty_block_misses(self):
        """Section 2.2's ownership rule: ANY pending word forces a miss."""
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 1)    # P1 owns; P0's buffer has word 1 pending
             .store(0, 0)    # P0 stores a CLEAN word: still a miss
             .build())
        r = run_protocol("WBWI", t, 8)
        assert r.counters.ownership_misses == 1
        assert r.misses == 3

    def test_store_to_owned_block_no_miss(self):
        t = (TraceBuilder(2)
             .store(0, 0)    # P0 owns after this
             .load(1, 0)
             .store(0, 1)    # owner with clean buffer: perform in place
             .build())
        r = run_protocol("WBWI", t, 8)
        assert r.counters.ownership_misses == 0
        assert r.misses == 2

    def test_store_with_clean_buffer_no_ownership_miss(self):
        """A non-owner with an empty invalidation buffer upgrades freely."""
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(0, 0)
             .build())
        r = run_protocol("WBWI", t, 8)
        assert r.counters.ownership_misses == 0
        assert r.misses == 1

    def test_ownership_transfers_counted(self):
        t = TraceBuilder(2).store(0, 0).store(1, 0).store(0, 0).build()
        r = run_protocol("WBWI", t, 4)
        assert r.counters.ownership_transfers == 2


class TestPaperClaims:
    def test_wbwi_equals_min_plus_ownership(self):
        """The only difference between WBWI and MIN is ownership (paper
        section 7.0), so on a write-free sharing pattern they agree."""
        t = (TraceBuilder(3)
             .store(0, 0).store(0, 1).store(0, 2).store(0, 3)
             .load(1, 0).load(2, 1)
             .store(0, 0)
             .load(1, 0).load(2, 1)
             .build())
        res = run_protocols(t, 16, ["MIN", "WBWI"])
        assert res["WBWI"].misses == res["MIN"].misses \
            + res["WBWI"].counters.ownership_misses

    def test_wbwi_eliminates_read_only_false_sharing(self):
        """Per-word dirty bits leave read-shared neighbours untouched."""
        t = (TraceBuilder(2)
             .load(0, 0)          # P0 reads word 0 forever
             .store(1, 1)
             .load(0, 0)
             .store(1, 1)
             .load(0, 0)
             .build())
        r = run_protocol("WBWI", t, 8)
        assert r.breakdown.pfs == 0
        assert r.misses == 2

    def test_write_shared_false_sharing_costs_ownership(self, pingpong_trace):
        """RMW false sharing cannot be fully eliminated: the ownership
        rule forces misses (the WBWI-MIN gap of Figure 6b)."""
        res = run_protocols(pingpong_trace, 16, ["MIN", "WBWI"])
        assert res["WBWI"].misses > res["MIN"].misses
        assert res["WBWI"].counters.ownership_misses > 0
