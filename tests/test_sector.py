"""Unit tests for the sector (sub-block coherence) protocol."""

import pytest

from repro.errors import ConfigError
from repro.mem import BlockMap
from repro.protocols import SectorProtocol, run_protocol, sector_sweep_sizes
from repro.trace import TraceBuilder


def run_sector(trace, block_bytes, sub_bytes):
    return SectorProtocol(trace.num_procs, BlockMap(block_bytes),
                          sub_bytes).run(trace)


class TestEndpoints:
    def test_word_sub_blocks_equal_min(self, random_trace):
        for bb in (16, 64):
            sector = run_sector(random_trace, bb, 4)
            mn = run_protocol("MIN", random_trace, bb)
            assert sector.misses == mn.misses
            assert sector.breakdown.as_dict() == mn.breakdown.as_dict()

    def test_full_block_sub_blocks_equal_otf(self, random_trace):
        for bb in (16, 64):
            sector = run_sector(random_trace, bb, bb)
            otf = run_protocol("OTF", random_trace, bb)
            assert sector.misses == otf.misses
            assert sector.breakdown.as_dict() == otf.breakdown.as_dict()

    def test_intermediate_sizes_interpolate(self, random_trace):
        misses = [run_sector(random_trace, 64, sub).misses
                  for sub in sector_sweep_sizes(64)]
        # Coarser coherence granularity can only add misses.
        assert misses == sorted(misses)


class TestMechanics:
    def test_invalid_sub_block_misses(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 4)    # word 4 is in the second 16-B sub-block
             .load(0, 4)     # accessed sub invalid: miss
             .build())
        r = run_sector(t, 64, 16)
        assert r.misses == 3

    def test_clean_sub_block_hits(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 4)    # invalidates only sub-block 1
             .load(0, 0)     # sub-block 0 still valid: hit
             .build())
        r = run_sector(t, 64, 16)
        assert r.misses == 2

    def test_same_sub_block_conflict_still_misses(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 1)    # word 1 shares the 16-B sub-block with word 0
             .load(0, 0)     # sub invalid: false sharing survives within sub
             .build())
        r = run_sector(t, 64, 16)
        assert r.misses == 3
        assert r.breakdown.pfs == 1

    def test_refetch_revalidates_all_subs(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 4).store(1, 8)   # two subs invalid
             .load(0, 4)                # miss refetches the whole block
             .load(0, 8)                # hit
             .build())
        r = run_sector(t, 64, 16)
        assert r.misses == 3

    def test_word_invalidations_counted_per_sub(self):
        t = TraceBuilder(2).load(0, 0).store(1, 4).build()
        r = run_sector(t, 64, 16)
        assert r.counters.word_invalidations == 1


class TestValidation:
    def test_sub_larger_than_block_rejected(self):
        with pytest.raises(ConfigError):
            SectorProtocol(2, BlockMap(16), 32)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            SectorProtocol(2, BlockMap(64), 12)

    def test_sub_smaller_than_word_rejected(self):
        with pytest.raises(ConfigError):
            SectorProtocol(2, BlockMap(64), 2)

    def test_sweep_sizes(self):
        assert sector_sweep_sizes(64) == [4, 8, 16, 32, 64]
        assert sector_sweep_sizes(4) == [4]
