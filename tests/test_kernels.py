"""Differential and integration tests for the vectorized kernel layer.

The streaming classifiers/protocols are the oracle: every test here
checks that `repro.kernels` reproduces their counters bit-for-bit — over
the real workload generators, over hypothesis-random traces (sync events
included), under arbitrary shard partitions through the engine, and
through the CLI.  Integration tests cover the resolution contract, the
checkpoint kernel binding, heartbeat granularity and the stall watchdog.
"""

import os
import time

import pytest

np = pytest.importorskip("numpy")

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.engine import SharedPrecompute, SweepEngine
from repro.classify.dubois import DuboisClassifier
from repro.classify.eggers import EggersClassifier
from repro.classify.torrellas import TorrellasClassifier
from repro.errors import ConfigError, StaleJournalError
from repro.kernels import (
    CLASSIFIER_KERNELS,
    PROTOCOL_KERNELS,
    KernelContext,
    effective_kernel_mode,
    has_kernel,
    resolve_kernel,
    validate_kernel_mode,
)
from repro.kernels.classifiers import dubois_kernel
from repro.mem.addresses import BlockMap
from repro.protocols.runner import make_protocol
from repro.runtime import signals
from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.retry import RetryPolicy
from repro.runtime.supervisor import Supervisor
from repro.trace.events import ACQUIRE, LOAD, RELEASE, STORE
from repro.trace.trace import Trace
from repro.workloads.registry import make_workload

#: One representative of each workload generator family.
FAMILIES = ("MP3D200", "WATER16", "JACOBI64", "FFT256", "LU32",
            "MATMUL24", "SOR64")
BLOCK_SIZES = (16, 64, 256)

_trace_cache = {}


def family_trace(name):
    if name not in _trace_cache:
        _trace_cache[name] = make_workload(name).generate()
    return _trace_cache[name]


def kernel_context(trace):
    return KernelContext.from_columns(trace.columns().data_only(),
                                      trace.num_procs)


# ----------------------------------------------------------------------
# differential suite: kernels == streaming oracles, bit for bit
# ----------------------------------------------------------------------
ORACLES = {"dubois": DuboisClassifier, "eggers": EggersClassifier,
           "torrellas": TorrellasClassifier}


class TestDifferentialWorkloads:
    @pytest.mark.parametrize("workload", FAMILIES)
    def test_classifier_kernels_match_oracles(self, workload):
        trace = family_trace(workload)
        ctx = kernel_context(trace)
        for bb in BLOCK_SIZES:
            bm = BlockMap(bb)
            for which, kernel in CLASSIFIER_KERNELS.items():
                expected = ORACLES[which].classify_trace(trace, bm)
                assert kernel(ctx, bm) == expected, (workload, bb, which)

    @pytest.mark.parametrize("workload", FAMILIES)
    def test_protocol_kernels_match_oracles(self, workload):
        trace = family_trace(workload)
        ctx = kernel_context(trace)
        for bb in BLOCK_SIZES:
            bm = BlockMap(bb)
            for name, kernel in PROTOCOL_KERNELS.items():
                expected = make_protocol(name, trace.num_procs,
                                         bm).run(trace)
                got = kernel(ctx, bm, trace_name=trace.name)
                assert got == expected, (workload, bb, name)


# ----------------------------------------------------------------------
# hypothesis: random traces (sync included), arbitrary shard partitions
# ----------------------------------------------------------------------
MAX_PROCS = 4
MAX_WORDS = 16


@st.composite
def traces(draw, max_events=60):
    """Random interleaved traces *including* ACQUIRE/RELEASE rows."""
    n = draw(st.integers(1, max_events))
    nproc = draw(st.integers(1, MAX_PROCS))
    events = [
        (draw(st.integers(0, nproc - 1)),
         draw(st.sampled_from((LOAD, LOAD, STORE, STORE, ACQUIRE,
                               RELEASE))),
         draw(st.integers(0, MAX_WORDS - 1)))
        for _ in range(n)
    ]
    return Trace(events, nproc, validate=False)


GRID = [("classify", 8, "dubois"), ("classify", 16, "eggers"),
        ("classify", 8, "torrellas"), ("compare", 16, None),
        ("protocol", 8, "OTF")]


@given(traces(), st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_engine_grids_match_under_arbitrary_shardings(trace, shards):
    """vectorized+sharded == interpreted+serial through the engine.

    Exercises the full integration surface per example: kernel dispatch
    in ``run_classifier``/``run_protocol``/``run_comparison``, the
    per-shard ephemeral contexts, and ``merge_shard_results`` /
    breakdown addition over an arbitrary shard count.
    """
    vec = SweepEngine(trace, jobs=1, shards=shards,
                      kernel="vectorized").run_grid(GRID)
    ref = SweepEngine(trace, jobs=1, shards=1,
                      kernel="interpreted").run_grid(GRID)
    assert vec == ref


@given(traces(max_events=40))
@settings(max_examples=30, deadline=None)
def test_kernels_match_oracles_on_random_traces(trace):
    ctx = kernel_context(trace)
    for bb in (4, 8, 32):
        bm = BlockMap(bb)
        for which, kernel in CLASSIFIER_KERNELS.items():
            assert kernel(ctx, bm) == ORACLES[which].classify_trace(
                trace, bm), (bb, which)
        for name, kernel in PROTOCOL_KERNELS.items():
            got = kernel(ctx, bm,
                         trace_name=trace.name or "<anonymous>")
            assert got == make_protocol(
                name, trace.num_procs, bm).run(trace), (bb, name)


# ----------------------------------------------------------------------
# resolution contract
# ----------------------------------------------------------------------
class TestResolution:
    def test_modes_validate(self):
        for mode in ("auto", "vectorized", "interpreted"):
            assert validate_kernel_mode(mode) == mode
        with pytest.raises(ConfigError):
            validate_kernel_mode("simd")

    def test_kernelled_cells(self):
        assert has_kernel("classify", "dubois")
        assert has_kernel("classify-shard", "eggers")
        assert has_kernel("compare", None)
        assert has_kernel("protocol", "OTF")
        assert has_kernel("protocol-shard", "OTF")
        assert not has_kernel("protocol", "MAX")
        assert not has_kernel("finite", "1024")
        assert not has_kernel("classify", "nope")

    def test_resolve_rules(self):
        assert resolve_kernel("auto", "classify", "dubois") == "vectorized"
        assert resolve_kernel("vectorized", "protocol", "OTF") == "vectorized"
        # Fallback: no kernel for this cell under every mode.
        assert resolve_kernel("vectorized", "protocol", "MAX") == "interpreted"
        assert resolve_kernel("auto", "finite", "64") == "interpreted"
        # Forced interpreted wins everywhere.
        assert resolve_kernel("interpreted", "classify",
                              "dubois") == "interpreted"

    def test_without_numpy_auto_degrades_and_vectorized_refuses(
            self, monkeypatch):
        import repro.kernels as K
        monkeypatch.setattr(K, "VECTORIZED_AVAILABLE", False)
        assert resolve_kernel("auto", "classify", "dubois") == "interpreted"
        assert effective_kernel_mode("auto") == "interpreted"
        with pytest.raises(ConfigError, match="requires NumPy"):
            validate_kernel_mode("vectorized")

    def test_effective_mode(self):
        assert effective_kernel_mode("interpreted") == "interpreted"
        assert effective_kernel_mode("vectorized") == "vectorized"
        assert effective_kernel_mode("auto") == "vectorized"  # numpy present


# ----------------------------------------------------------------------
# checkpoint binding: --resume never mixes kernels
# ----------------------------------------------------------------------
class TestJournalKernelBinding:
    def test_journal_rejects_other_kernel_mode(self, tmp_path):
        trace = family_trace("MATMUL24")
        cell = ("classify", 64, "dubois")
        journal = CheckpointJournal(str(tmp_path), "k", kernel="vectorized")
        journal.record(cell, DuboisClassifier.classify_trace(
            trace, BlockMap(64)))
        journal.close()
        # Same mode: records load.
        assert CheckpointJournal(str(tmp_path), "k",
                                 kernel="vectorized").load() != {}
        # Other mode: the header digest no longer matches.
        with pytest.raises(StaleJournalError, match="kernel"):
            CheckpointJournal(str(tmp_path), "k",
                              kernel="interpreted").load()

    def test_engine_resume_refuses_kernel_switch(self, tmp_path):
        trace = family_trace("MATMUL24")
        ckpt = str(tmp_path / "ckpt")
        cells = [("classify", 64, "dubois")]
        first = SweepEngine(trace, checkpoint_dir=ckpt, kernel="auto")
        second = SweepEngine(trace, checkpoint_dir=ckpt, kernel="auto",
                             trace_key=first.trace_key)
        switched = SweepEngine(trace, checkpoint_dir=ckpt,
                               kernel="interpreted",
                               trace_key=first.trace_key)
        result = first.run_grid(cells)
        assert second.run_grid(cells) == result  # same mode resumes
        with pytest.raises(StaleJournalError):
            switched.run_grid(cells)


# ----------------------------------------------------------------------
# CLI equivalence
# ----------------------------------------------------------------------
class TestCliKernelFlag:
    def test_classify_output_identical_across_kernels(self, capsys):
        from repro.cli import main
        outs = []
        for mode in ("vectorized", "interpreted"):
            assert main(["classify", "MATMUL24", "--block", "32",
                         "--kernel", mode]) == 0
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1]

    def test_simulate_output_identical_across_kernels(self, capsys):
        from repro.cli import main
        outs = []
        for mode in ("vectorized", "interpreted"):
            assert main(["simulate", "MATMUL24", "--block", "32",
                         "--protocol", "OTF", "--kernel", mode]) == 0
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1]


# ----------------------------------------------------------------------
# heartbeat granularity & the stall watchdog
# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_large_batch_ticks_at_chunk_granularity(self, monkeypatch):
        """One big batch ticks progress in <= HEARTBEAT_CHUNK slices."""
        trace = family_trace("MP3D200")
        ctx = kernel_context(trace)
        assert ctx.n > signals.HEARTBEAT_CHUNK  # the premise
        ticks = []
        orig = signals.note_progress
        monkeypatch.setattr(signals, "note_progress",
                            lambda n=1: (ticks.append(n), orig(n)))
        stats = {}
        dubois_kernel(ctx, BlockMap(64), stats=stats)
        assert sum(ticks) == ctx.n  # one tick credit per row, exactly
        assert max(ticks) <= signals.HEARTBEAT_CHUNK
        assert len(ticks) >= 2  # ticked *during* the batch, not once at end
        assert stats == {"rows": ctx.n, "batches": len(ticks)}

    def test_kernel_stats_accumulate_across_cells(self):
        trace = family_trace("MATMUL24")
        pre = SharedPrecompute(trace, kernel="vectorized")
        pre.run_cell(("classify", 64, "dubois"))
        first = dict(pre.last_kernel_stats)
        assert first["rows"] == len(pre.data.proc)
        assert first["batches"] >= 1
        pre.run_cell(("compare", 32, None))  # three kernels, one cell
        assert pre.last_kernel_stats["rows"] == 3 * first["rows"]


def _slow_vectorized_cell(task):
    """A vectorized cell slowed to several stall windows of runtime.

    Every heartbeat phase sleeps before ticking, so the kernel takes
    ~0.6 s against a 0.25 s stall timeout while its progress counter
    advances phase by phase — the watchdog must classify it as slow,
    never as hung.  A start-marker file per attempt proves no kill/retry
    happened.
    """
    from repro.kernels import classifiers as K

    marker, idx = task
    with open(f"{marker}.{os.getpid()}.{idx}", "w"):
        pass
    events = [(p, STORE if (i + p) % 3 else LOAD, (i * 7 + p) % 64)
              for i in range(500) for p in range(4)]
    trace = Trace(events, 4, validate=False)
    ctx = KernelContext.from_columns(trace.columns().data_only(), 4)
    orig_phase = K._Heartbeat.phase

    def slow_phase(self):
        time.sleep(0.09)
        orig_phase(self)

    K._Heartbeat.phase = slow_phase
    try:
        K.dubois_kernel(ctx, BlockMap(16))
    finally:
        K._Heartbeat.phase = orig_phase
    return idx


class TestWatchdogRegression:
    def test_slow_vectorized_cell_is_not_falsely_killed(self, tmp_path):
        marker = str(tmp_path / "started")
        sup = Supervisor(_slow_vectorized_cell, jobs=2, timeout=0.25,
                         retry=RetryPolicy(max_attempts=1,
                                           base_delay=0.01,
                                           max_delay=0.02))
        assert sup.run([(marker, 0), (marker, 1)]) == [0, 1]
        starts = sorted(n.rsplit(".", 1)[1] for n in os.listdir(tmp_path))
        assert starts == ["0", "1"]  # exactly one attempt per cell
