"""Unit tests for the traffic model."""

import pytest

from repro.protocols import run_protocol, run_protocols
from repro.protocols.traffic import (
    Traffic,
    TrafficModel,
    estimate_traffic,
    traffic_per_reference,
)
from repro.trace import TraceBuilder
from repro.trace.synth import producer_consumer


class TestTrafficArithmetic:
    def test_components_sum(self):
        t = Traffic(fetch_bytes=100, word_write_bytes=20,
                    invalidation_bytes=8, word_invalidation_bytes=12)
        assert t.data_bytes == 120
        assert t.control_bytes == 20
        assert t.total_bytes == 140

    def test_per_reference(self):
        t = Traffic(100, 0, 0, 0)
        assert t.per_reference(50) == pytest.approx(2.0)
        assert t.per_reference(0) == 0.0


class TestEstimation:
    def test_otf_counts_fetches_and_invalidations(self):
        trace = (TraceBuilder(2)
                 .load(0, 0).load(1, 0).store(0, 0).build())
        r = run_protocol("OTF", trace, 8)
        t = estimate_traffic(r)
        # 2 fetches of an 8-byte block (+8B header each), 1 invalidation.
        assert t.fetch_bytes == 2 * (8 + 8)
        assert t.invalidation_bytes == 8
        assert t.word_write_bytes == 0

    def test_min_counts_write_throughs_and_word_invalidations(self):
        trace = (TraceBuilder(2)
                 .load(0, 0).store(1, 1).build())
        r = run_protocol("MIN", trace, 8)
        t = estimate_traffic(r)
        assert t.word_write_bytes == 12       # one word write-through
        assert t.word_invalidation_bytes == 12

    def test_custom_model(self):
        trace = TraceBuilder(1).load(0, 0).build()
        r = run_protocol("OTF", trace, 8)
        t = estimate_traffic(r, TrafficModel(header_bytes=0))
        assert t.fetch_bytes == 8

    def test_block_size_drives_fetch_traffic(self, producer_trace):
        small = estimate_traffic(run_protocol("OTF", producer_trace, 16))
        large = estimate_traffic(run_protocol("OTF", producer_trace, 256))
        # fewer misses at large blocks, but each one moves far more data
        assert large.fetch_bytes > small.fetch_bytes


class TestPaperConclusion:
    def test_reduced_misses_reduce_miss_traffic(self, pingpong_trace):
        """'The protocols with reduced miss rates also have reduced miss
        traffic' — MIN eliminates the useless misses of the ping-pong
        pattern and with them their block-fill traffic."""
        res = run_protocols(pingpong_trace, 64, ["OTF", "MIN"])
        fetch = {n: estimate_traffic(r).fetch_bytes for n, r in res.items()}
        assert res["MIN"].misses < res["OTF"].misses
        assert fetch["MIN"] < fetch["OTF"]

    def test_update_protocol_trades_misses_for_word_traffic(self):
        t = producer_consumer(4, words=16, rounds=10)
        otf = run_protocol("OTF", t, 64)
        wu = run_protocol("WU", t, 64)
        assert wu.misses < otf.misses
        assert estimate_traffic(wu).word_write_bytes \
            > estimate_traffic(otf).word_write_bytes

    def test_traffic_per_reference_helper(self, producer_trace):
        r = run_protocol("OTF", producer_trace, 64)
        assert traffic_per_reference(r) == pytest.approx(
            estimate_traffic(r).total_bytes / r.breakdown.data_refs)
