"""Partition-dimension layer: by-cache-set finite caches and sharded
Eggers/Torrellas/compare cells.

Acceptance criteria covered here:

* hypothesis property: *any* partition of the cache sets — arbitrary
  assignments, not just the LPT plan — merges bit-identically for
  ``FiniteOTFProtocol`` across associativities (ways ∈ {1, 2, full});
* sharded Eggers, Torrellas and three-way compare cells match their
  serial runs on all six workloads;
* the shard-plan digest embeds the partition dimension, so checkpoint
  resume can never mix ``by-block`` and ``by-cache-set`` partials;
* finite caches are reachable from the CLI (``repro simulate
  --capacity-blocks N [--ways W]``) and shard to identical output;
* the telemetry manifest records ``partition_dim`` per cell.
"""

import dataclasses
import json
import os

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.engine import SweepEngine, partition_dim_for
from repro.classify.breakdown import SimpleBreakdown
from repro.classify.compare import ClassificationComparison, compare_classifications
from repro.errors import ConfigError, ProtocolError
from repro.mem.addresses import BlockMap
from repro.obs import find_runs, load_manifest, validate_manifest
from repro.protocols import (
    BY_BLOCK,
    FiniteOTFProtocol,
    PartitionDim,
    by_cache_set,
    cache_geometry,
    finite_spec,
    parse_finite_spec,
    plan_for_trace,
    plan_shards,
    run_finite_shard,
    run_finite_sharded,
    run_protocol_shard,
)
from repro.protocols.results import merge_shard_results
from repro.protocols.sharding import ShardPlan, shard_subtrace
from repro.trace.synth import uniform_random

CLASSIFY_CELLS = [("classify", 32, "eggers"), ("classify", 32, "torrellas"),
                  ("compare", 32, None)]


# ----------------------------------------------------------------------
# the dimension abstraction
# ----------------------------------------------------------------------
class TestPartitionDim:
    def test_by_block_is_identity_with_sync_replication(self):
        blocks = np.array([7, 0, 7, 3], dtype=np.int64)
        assert BY_BLOCK.unit_of_rows(blocks).tolist() == [7, 0, 7, 3]
        assert BY_BLOCK.replicate_sync
        assert BY_BLOCK.num_sets == 0

    def test_by_cache_set_maps_blocks_modulo_sets(self):
        dim = by_cache_set(4)
        blocks = np.array([0, 1, 4, 5, 9], dtype=np.int64)
        assert dim.unit_of_rows(blocks).tolist() == [0, 1, 0, 1, 1]
        assert not dim.replicate_sync

    def test_by_cache_set_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            by_cache_set(0)

    def test_dim_names_are_distinct_per_geometry(self):
        assert by_cache_set(4).name != by_cache_set(8).name
        assert by_cache_set(4) == by_cache_set(4)

    def test_plan_digest_embeds_dimension(self):
        """by-block and by-cache-set plans over the same rows never share
        a digest, so resume cannot mix partials across dimensions."""
        blocks = np.arange(64, dtype=np.int64) % 16
        by_block = plan_shards(blocks, 4, 2)
        by_set = plan_shards(blocks, 4, 2, dim=by_cache_set(8))
        assert by_block.digest != by_set.digest
        assert by_block.dim is BY_BLOCK
        assert by_set.dim.num_sets == 8

    def test_plan_groups_whole_sets(self):
        """Every block of one cache set lands in the same shard."""
        trace = uniform_random(4, words=256, num_events=2000, seed=5)
        dim = by_cache_set(8)
        plan = plan_for_trace(trace, BlockMap(16), 3, dim=dim)
        cols = trace.columns()
        blocks = cols.block_ids(plan.offset_bits)[cols.data_mask()]
        shards = plan.shard_of_rows(blocks)
        for s in np.unique(dim.unit_of_rows(blocks)):
            assert len(np.unique(shards[blocks % 8 == s])) == 1

    def test_set_shards_clamp_to_num_sets(self):
        trace = uniform_random(2, words=64, num_events=500, seed=1)
        plan = plan_for_trace(trace, BlockMap(16), 16, dim=by_cache_set(2))
        assert plan.num_shards <= 2

    def test_set_subtrace_has_no_sync_replication(self, mp3d_trace):
        plan = plan_for_trace(mp3d_trace, BlockMap(64), 2,
                              dim=by_cache_set(4))
        total = sum(len(shard_subtrace(mp3d_trace, plan, s))
                    for s in range(plan.num_shards))
        cols = mp3d_trace.columns()
        assert total == int(cols.data_mask().sum())

    def test_partition_dim_for_cells(self):
        assert partition_dim_for(("protocol", 64, "OTF")) is BY_BLOCK
        assert partition_dim_for(("classify", 64, "eggers")) is BY_BLOCK
        assert partition_dim_for(("compare", 64, None)) is BY_BLOCK
        assert partition_dim_for(("compare-shard", 64, None, "d", 0)) is BY_BLOCK
        dim = partition_dim_for(("finite", 64, "c32w4"))
        assert dim.num_sets == 8 and not dim.replicate_sync
        assert partition_dim_for(("finite-shard", 64, "c32w4", "d", 1)).num_sets == 8
        assert partition_dim_for(("unknown", 64, None)) is None

    def test_protocol_shard_rejects_set_plan(self, mp3d_trace):
        plan = plan_for_trace(mp3d_trace, BlockMap(64), 2,
                              dim=by_cache_set(4))
        with pytest.raises(ProtocolError, match="by-block"):
            run_protocol_shard("OTF", mp3d_trace, 64, plan, 0)

    def test_finite_shard_rejects_mismatched_geometry(self, mp3d_trace):
        plan = plan_for_trace(mp3d_trace, BlockMap(64), 2,
                              dim=by_cache_set(4))
        with pytest.raises(ProtocolError, match="sets"):
            run_finite_shard(mp3d_trace, 64, 32, plan, 0, ways=2)  # 16 sets


# ----------------------------------------------------------------------
# set-associative geometry
# ----------------------------------------------------------------------
class TestCacheGeometry:
    def test_fully_associative_default(self):
        assert cache_geometry(8) == (1, 8)
        assert cache_geometry(8, 8) == (1, 8)

    def test_direct_mapped(self):
        assert cache_geometry(8, 1) == (8, 1)

    @pytest.mark.parametrize("capacity,ways", [(0, None), (8, 0), (8, 16),
                                               (8, 3)])
    def test_bad_shapes_rejected(self, capacity, ways):
        with pytest.raises(ConfigError):
            cache_geometry(capacity, ways)

    def test_spec_round_trips(self):
        assert parse_finite_spec(finite_spec(32, 4)) == (32, 4)
        assert finite_spec(32, 4) == "c32w4"

    def test_fully_associative_specs_canonicalize(self):
        assert finite_spec(32) == finite_spec(32, 32) == "c32"
        assert parse_finite_spec("c32") == (32, None)

    def test_malformed_spec_rejected(self):
        for bad in ("w4", "c", "c8w3", "32", "c8w0"):
            with pytest.raises(ConfigError):
                parse_finite_spec(bad)

    def test_ways_equal_capacity_matches_old_fully_associative(self):
        trace = uniform_random(4, words=256, num_events=4000, seed=9)
        old = FiniteOTFProtocol(4, BlockMap(16), 16).run(trace)
        new = FiniteOTFProtocol(4, BlockMap(16), 16, ways=16).run(trace)
        assert old == new

    def test_direct_mapped_conflict_evicts(self):
        """With 2 direct-mapped sets, blocks 0 and 2 conflict in set 0
        while block 1 (set 1) is untouched."""
        from repro.trace import TraceBuilder

        t = (TraceBuilder(1)
             .load(0, 0)    # block 0 -> set 0
             .load(0, 4)    # block 1 -> set 1
             .load(0, 8)    # block 2 -> set 0: evicts block 0
             .load(0, 0)    # replacement miss; evicts block 2
             .load(0, 4)    # still cached in set 1: hit
             .build())
        r = FiniteOTFProtocol(1, BlockMap(16), 2, ways=1).run(t)
        assert r.counters.replacements == 2  # block 0, then block 2
        assert r.replacement_misses == 1
        assert r.counters.fetches == 4  # the load of block 1 hits once
        # fully associative LRU over both slots also evicts block 1, so
        # the same trace pays one more replacement miss there
        full = FiniteOTFProtocol(1, BlockMap(16), 2).run(t)
        assert full.replacement_misses == 2


# ----------------------------------------------------------------------
# the headline properties
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 30), ways_sel=st.sampled_from([1, 2, None]),
       shards=st.integers(1, 5))
def test_set_sharding_bit_identical_across_ways(seed, ways_sel, shards):
    """LPT set partitions merge bit-identically for ways ∈ {1, 2, full}."""
    trace = uniform_random(4, words=128, num_events=1500, seed=seed)
    capacity = 16
    serial = FiniteOTFProtocol(4, BlockMap(16), capacity,
                               ways=ways_sel).run(trace)
    sharded = run_finite_sharded(trace, 16, capacity, shards, ways=ways_sel)
    assert sharded == serial


@settings(deadline=None, max_examples=20)
@given(data=st.data())
def test_any_set_partition_merges_bit_identically(data):
    """*Arbitrary* set→shard assignments (not just the LPT plan) merge to
    the serial result: legality depends only on whole sets staying
    together, not on the balancing heuristic."""
    seed = data.draw(st.integers(0, 30), label="seed")
    ways = data.draw(st.sampled_from([1, 2]), label="ways")
    trace = uniform_random(3, words=128, num_events=1000, seed=seed)
    capacity = 16
    block_map = BlockMap(16)
    num_sets = cache_geometry(capacity, ways)[0]
    dim = by_cache_set(num_sets)
    cols = trace.columns()
    blocks = cols.block_ids(block_map.offset_bits)[cols.data_mask()]
    units, counts = np.unique(dim.unit_of_rows(blocks), return_counts=True)
    num_shards = data.draw(st.integers(1, max(1, len(units))),
                           label="num_shards")
    assignment = np.array(
        [data.draw(st.integers(0, num_shards - 1), label=f"set{u}")
         for u in units], dtype=np.int64)
    loads = [int(counts[assignment == s].sum()) for s in range(num_shards)]
    plan = ShardPlan(offset_bits=block_map.offset_bits,
                     num_shards=num_shards, unique_blocks=units,
                     assignment=assignment, shard_events=tuple(loads),
                     digest="arbitrary", dim=dim)
    serial = FiniteOTFProtocol(3, BlockMap(16), capacity, ways=ways).run(trace)
    parts = [run_finite_shard(trace, 16, capacity, plan, s, ways=ways)
             for s in range(num_shards)]
    assert merge_shard_results(parts) == serial


class TestShardedClassifierEquivalence:
    def test_all_workloads_match_serial(self, workload_traces):
        """Sharded Eggers/Torrellas/compare == serial on all six workloads."""
        for name, trace in workload_traces.items():
            serial = SweepEngine(trace).run_grid(CLASSIFY_CELLS)
            sharded = SweepEngine(trace, shards=3).run_grid(CLASSIFY_CELLS)
            assert sharded == serial, name

    def test_compare_shards_match_single_pass_driver(self, mp3d_trace):
        """The sharded compare cell equals compare_classifications too."""
        (sharded,) = SweepEngine(mp3d_trace, shards=4).run_grid(
            [("compare", 64, None)])
        assert sharded == compare_classifications(mp3d_trace, 64)

    def test_simple_breakdown_merge(self):
        a = SimpleBreakdown(1, 2, 3, 10)
        b = SimpleBreakdown(4, 5, 6, 20)
        assert a + b == SimpleBreakdown(5, 7, 9, 30)

    def test_comparison_merge_rejects_mismatched_cells(self, mp3d_trace):
        c = compare_classifications(mp3d_trace, 32)
        d = dataclasses.replace(c, block_bytes=64)
        with pytest.raises(ValueError):
            c + d

    def test_parallel_workers_match_serial(self, mp3d_trace):
        if not hasattr(os, "fork"):
            pytest.skip("fork start method unavailable")
        serial = SweepEngine(mp3d_trace).run_grid(CLASSIFY_CELLS)
        parallel = SweepEngine(mp3d_trace, jobs=2, shards=2).run_grid(
            CLASSIFY_CELLS)
        assert parallel == serial


class TestEngineFiniteCells:
    def test_sharded_finite_cell_matches_serial(self, mp3d_trace):
        cells = [("finite", 64, "c64w4"), ("finite", 64, "c16w2")]
        serial = SweepEngine(mp3d_trace).run_grid(cells)
        sharded = SweepEngine(mp3d_trace, shards=4).run_grid(cells)
        assert sharded == serial
        assert serial[0].protocol == "OTF-finite"

    def test_fully_associative_cell_never_splits(self, mp3d_trace):
        """One set = one unit: the cell must run whole (and still work)."""
        engine = SweepEngine(mp3d_trace, shards=4)
        assert not engine._shardable(("finite", 64, "c64"))
        (result,) = engine.run_grid([("finite", 64, "c64")])
        assert result == FiniteOTFProtocol(
            mp3d_trace.num_procs, BlockMap(64), 64).run(mp3d_trace)

    def test_finite_sweep_shows_essential_fraction_growth(self, mp3d_trace):
        """Paper section 8.0 expectation, through the sharded engine."""
        engine = SweepEngine(mp3d_trace, shards=2)
        results = engine.finite_sweep((8, 32, 4096), block_bytes=64, ways=2)
        fractions = []
        for cap in (8, 32, 4096):
            r = results[cap]
            essential = r.breakdown.essential + r.replacement_misses
            fractions.append(essential / r.misses)
        assert fractions[0] >= fractions[1] >= fractions[2]

    def test_finite_shard_partials_journaled_under_digest_keys(
            self, tmp_path, mp3d_trace, monkeypatch):
        from repro.runtime.checkpoint import CheckpointJournal

        ckpt = str(tmp_path / "ckpt")
        engine = SweepEngine(mp3d_trace, shards=3, checkpoint_dir=ckpt)
        # Spy on journal appends: partials are journaled as they finish
        # but the post-sweep compaction folds absorbed ones away, so the
        # digest-keying must be observed at record time.
        recorded = []
        orig_record = CheckpointJournal.record

        def spy(self, cell, result):
            recorded.append(tuple(cell))
            return orig_record(self, cell, result)

        monkeypatch.setattr(CheckpointJournal, "record", spy)
        (result,) = engine.run_grid([("finite", 64, "c64w4")])
        plan = engine.precompute.shard_plan(BlockMap(64), 3,
                                            by_cache_set(16))
        expected = {("finite-shard", 64, "c64w4", plan.digest, s)
                    for s in range(plan.num_shards)}
        assert expected <= set(recorded)
        assert ("finite", 64, "c64w4") in recorded
        # After the grid completes the journal is compacted: the merged
        # parent cell survives, its absorbed shard partials do not.
        journal_file = os.path.join(ckpt, f"{engine.trace_key}.jsonl")
        keys = [tuple(rec["cell"])
                for rec in map(json.loads, open(journal_file,
                                                encoding="utf-8"))
                if "cell" in rec]
        assert ("finite", 64, "c64w4") in keys
        assert not expected & set(keys)

    def test_resume_matches_fresh_run(self, tmp_path, mp3d_trace):
        ckpt = str(tmp_path / "ckpt")
        cells = [("finite", 64, "c64w4"), ("compare", 64, None)]
        first = SweepEngine(mp3d_trace, shards=3,
                            checkpoint_dir=ckpt).run_grid(cells)
        resumed = SweepEngine(mp3d_trace, shards=3,
                              checkpoint_dir=ckpt).run_grid(cells)
        assert resumed == first


# ----------------------------------------------------------------------
# telemetry: partition_dim lands in the manifest
# ----------------------------------------------------------------------
class TestManifestPartitionDim:
    def test_manifest_records_dimension_per_cell(self, tmp_path, mp3d_trace):
        tel = str(tmp_path / "tel")
        engine = SweepEngine(mp3d_trace, shards=2, telemetry_dir=tel)
        engine.run_grid([("finite", 64, "c64w4"), ("classify", 64, "eggers"),
                         ("compare", 64, None)])
        (run_dir,) = find_runs(tel)
        manifest = load_manifest(run_dir)
        validate_manifest(manifest)
        dims = {tuple(c["cell"]): c["partition_dim"]
                for c in manifest["cells"]}
        assert dims[("finite", 64, "c64w4")] == "by-cache-set/16"
        assert dims[("classify", 64, "eggers")] == "by-block"
        assert dims[("compare", 64, None)] == "by-block"


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestCLI:
    def test_capacity_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["simulate", "MATMUL24", "--capacity-blocks", "64",
             "--ways", "4", "--shards", "2"])
        assert args.capacity_blocks == 64
        assert args.ways == 4
        assert args.shards == 2

    def test_ways_requires_capacity(self):
        from repro.cli import main

        assert main(["simulate", "MATMUL24", "--ways", "4"]) == 2

    def test_capacity_rejects_other_protocols(self):
        from repro.cli import main

        assert main(["simulate", "MATMUL24", "--capacity-blocks", "64",
                     "--protocol", "MIN"]) == 2

    def test_simulate_finite_sharded_matches_plain(self, capsys):
        from repro.cli import main

        assert main(["simulate", "MATMUL24", "--capacity-blocks", "16",
                     "--ways", "2"]) == 0
        plain = capsys.readouterr().out
        assert "OTF-finite" in plain
        assert main(["simulate", "MATMUL24", "--capacity-blocks", "16",
                     "--ways", "2", "--shards", "3"]) == 0
        assert capsys.readouterr().out == plain
