"""Unit tests for struct layouts and the paper's record sizes."""

import pytest

from repro.errors import LayoutError
from repro.mem.allocator import Allocator
from repro.mem.layout import (
    ANL_BARRIER,
    ANL_LOCK,
    PARTICLE,
    SPACE_CELL,
    StructLayout,
    WATER_MOLECULE,
    padded_layout,
)


class TestStructLayout:
    def test_offsets_packed(self):
        s = StructLayout("s", [("a", 8), ("b", 4), ("c", 12)])
        assert s.offset_words("a") == 0
        assert s.offset_words("b") == 2
        assert s.offset_words("c") == 3
        assert s.nbytes == 24 and s.words == 6

    def test_unknown_field_rejected(self):
        s = StructLayout("s", [("a", 4)])
        with pytest.raises(LayoutError):
            s.offset_words("zzz")
        with pytest.raises(LayoutError):
            s.field("zzz")

    def test_duplicate_field_rejected(self):
        with pytest.raises(LayoutError):
            StructLayout("s", [("a", 4), ("a", 4)])

    def test_empty_struct_rejected(self):
        with pytest.raises(LayoutError):
            StructLayout("s", [])

    def test_non_word_multiple_field_rejected(self):
        with pytest.raises(LayoutError):
            StructLayout("s", [("a", 6)])

    def test_zero_size_field_rejected(self):
        with pytest.raises(LayoutError):
            StructLayout("s", [("a", 0)])

    def test_field_words_in_region(self):
        s = StructLayout("s", [("a", 8), ("b", 4)])
        region = Allocator().alloc_bytes("inst", s.nbytes)
        assert list(s.field_words(region, "a")) == [0, 1]
        assert list(s.field_words(region, "b")) == [2]

    def test_field_word_indexing(self):
        s = StructLayout("s", [("a", 12)])
        region = Allocator().alloc_bytes("inst", s.nbytes)
        assert s.field_word(region, "a", 2) == 2
        with pytest.raises(LayoutError):
            s.field_word(region, "a", 3)

    def test_too_small_region_rejected(self):
        s = StructLayout("s", [("a", 16)])
        region = Allocator().alloc_bytes("small", 8)
        with pytest.raises(LayoutError):
            s.field_words(region, "a")


class TestPaperLayouts:
    def test_particle_is_36_bytes(self):
        assert PARTICLE.nbytes == 36

    def test_space_cell_is_48_bytes(self):
        assert SPACE_CELL.nbytes == 48

    def test_molecule_is_680_bytes(self):
        assert WATER_MOLECULE.nbytes == 680

    def test_molecule_forces_is_nine_doubles(self):
        assert WATER_MOLECULE.field("forces").nbytes == 72

    def test_collision_touches_five_words(self):
        """Paper: 'five words (20 bytes) of the data structures ... are
        updated' — our collision fields are vel (3 words) + scratch (2)."""
        assert PARTICLE.field("vel").words + PARTICLE.field("scratch").words == 5

    def test_barrier_counter_and_flag_adjacent(self):
        assert ANL_BARRIER.nbytes == 8
        assert ANL_BARRIER.offset_words("flag") \
            == ANL_BARRIER.offset_words("counter") + 1

    def test_lock_is_one_word(self):
        assert ANL_LOCK.nbytes == 4


class TestPaddedLayout:
    def test_pads_to_boundary(self):
        padded = padded_layout(ANL_BARRIER, 64)
        assert padded.nbytes == 64

    def test_already_aligned_unchanged_size(self):
        s = StructLayout("s", [("a", 64)])
        assert padded_layout(s, 64).nbytes == 64

    def test_field_offsets_preserved(self):
        padded = padded_layout(ANL_BARRIER, 32)
        assert padded.offset_words("counter") == 0
        assert padded.offset_words("flag") == 1

    def test_bad_alignment_rejected(self):
        with pytest.raises(LayoutError):
            padded_layout(ANL_BARRIER, 6)
