"""Equivalence suite for the sweep engine.

Proves that the columnar engine path (vectorized prefilter, precomputed
block ids, grid fan-out) produces *identical* miss breakdowns and protocol
counters to the classic tuple-iteration path, for every registered workload,
all three classifiers and all seven protocols, at block sizes {4, 64, 1024}.

The paper-scale large configurations (``PAPER_LARGE_SUITE``) are excluded:
they take tens of minutes to generate.  Every other workload is covered via
a deterministic prefix of its trace so the whole suite stays fast; both
paths see exactly the same events, so equality is exact, not statistical.
"""

import pytest

from repro.analysis.engine import CLASSIFIERS, SharedPrecompute, SweepEngine
from repro.analysis.sweep import sweep_block_sizes
from repro.classify.compare import compare_classifications
from repro.mem.addresses import BlockMap
from repro.protocols.runner import (
    ALL_PROTOCOLS,
    run_protocol,
    run_protocol_grid,
    run_protocols,
)
from repro.trace.columnar import TraceColumns
from repro.trace.trace import Trace
from repro.workloads.registry import NAMED_CONFIGS, PAPER_LARGE_SUITE, make_workload

#: Every registered workload except the tens-of-minutes paper-scale runs.
WORKLOAD_NAMES = tuple(n for n in NAMED_CONFIGS if n not in PAPER_LARGE_SUITE)

#: Acceptance block sizes: the paper's extremes plus its headline size.
BLOCK_SIZES = (4, 64, 1024)

#: Deterministic per-workload prefix length keeping the suite fast.
PREFIX = 8000


@pytest.fixture(scope="module")
def traces():
    """``name -> (tuple_trace, columnar_trace)`` over identical events.

    The tuple trace never grows columns during these tests (the streaming
    path); the columnar trace starts from arrays (the engine path).
    """
    out = {}
    for name in WORKLOAD_NAMES:
        full = make_workload(name).generate()
        events = full.events[:PREFIX]
        tuple_trace = Trace(events, full.num_procs, name=name, copy=False)
        col_trace = Trace.from_columns(TraceColumns.from_events(events),
                                       full.num_procs, name=name)
        out[name] = (tuple_trace, col_trace)
    return out


@pytest.fixture(scope="module")
def precomputes(traces):
    """One shared :class:`SharedPrecompute` per workload (the engine path)."""
    return {name: SharedPrecompute(col)
            for name, (_, col) in traces.items()}


@pytest.mark.parametrize("block_bytes", BLOCK_SIZES)
@pytest.mark.parametrize("classifier", sorted(CLASSIFIERS))
@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_classifier_equivalence(traces, precomputes, name, classifier,
                                block_bytes):
    tuple_trace, _ = traces[name]
    cls = CLASSIFIERS[classifier]
    expected = cls.classify_trace(tuple_trace, BlockMap(block_bytes))
    got = precomputes[name].run_classifier(classifier, block_bytes)
    assert got == expected


@pytest.mark.parametrize("block_bytes", BLOCK_SIZES)
@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_protocol_equivalence(traces, precomputes, name, block_bytes):
    tuple_trace, _ = traces[name]
    pre = precomputes[name]
    for protocol in ALL_PROTOCOLS:
        expected = run_protocol(protocol, tuple_trace, block_bytes)
        got = pre.run_protocol(protocol, block_bytes)
        assert got == expected, f"{protocol} diverged"


@pytest.mark.parametrize("name", ("MP3D200", "FFT256"))
def test_comparison_equivalence(traces, precomputes, name):
    tuple_trace, _ = traces[name]
    for block_bytes in BLOCK_SIZES:
        expected = compare_classifications(tuple_trace, block_bytes)
        got = precomputes[name].run_comparison(block_bytes)
        assert got == expected


def test_classify_sweep_matches_sweep_block_sizes(traces):
    tuple_trace, col_trace = traces["LU32"]
    engine = SweepEngine(col_trace)
    assert (engine.classify_sweep(BLOCK_SIZES).breakdowns
            == sweep_block_sizes(tuple_trace, BLOCK_SIZES).breakdowns)


def test_fork_pool_matches_serial(traces):
    _, col_trace = traces["MP3D200"]
    serial = SweepEngine(col_trace, jobs=1)
    forked = SweepEngine(col_trace, jobs=2)
    assert (forked.classify_sweep(BLOCK_SIZES).breakdowns
            == serial.classify_sweep(BLOCK_SIZES).breakdowns)
    sizes = (64, 1024)
    assert (forked.protocol_grid(sizes, ("MIN", "OTF", "MAX"))
            == serial.protocol_grid(sizes, ("MIN", "OTF", "MAX")))


def test_run_protocols_jobs_matches_serial(traces):
    _, col_trace = traces["WATER16"]
    assert (run_protocols(col_trace, 64, ("MIN", "OTF"), jobs=2)
            == run_protocols(col_trace, 64, ("MIN", "OTF")))


def test_run_protocol_grid_shape(traces):
    _, col_trace = traces["FFT256"]
    grid = run_protocol_grid(col_trace, (4, 64), ("MIN", "MAX"))
    assert set(grid) == {(4, "MIN"), (4, "MAX"), (64, "MIN"), (64, "MAX")}
    for (bb, name), result in grid.items():
        assert result.block_bytes == bb and result.protocol == name


def test_for_workload_generates_once(tmp_path):
    cache_dir = str(tmp_path / "traces")
    first = SweepEngine.for_workload("FFT256", cache_dir=cache_dir)
    second = SweepEngine.for_workload("FFT256", cache_dir=cache_dir)
    assert first.trace == second.trace
    assert second.trace.has_columns  # reloaded straight from arrays
