"""Property-based tests (hypothesis) for the classifiers.

Strategies generate small random interleaved traces; the properties encode
the paper's analytic claims from sections 2.1 and 3.x plus structural
soundness of the implementations.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.invariants import check_eggers_tsm_subset_torrellas
from repro.classify import (
    DuboisClassifier,
    EggersClassifier,
    TorrellasClassifier,
    compare_classifications,
)
from repro.mem import BlockMap
from repro.trace.events import LOAD, STORE
from repro.trace.trace import Trace

MAX_PROCS = 4
MAX_WORDS = 16


@st.composite
def traces(draw, max_events=60):
    n = draw(st.integers(1, max_events))
    nproc = draw(st.integers(1, MAX_PROCS))
    events = [
        (draw(st.integers(0, nproc - 1)),
         draw(st.sampled_from((LOAD, STORE))),
         draw(st.integers(0, MAX_WORDS - 1)))
        for _ in range(n)
    ]
    return Trace(events, nproc, validate=False)


block_sizes = st.sampled_from((4, 8, 16, 32, 64))


@given(traces(), block_sizes)
@settings(max_examples=150, deadline=None)
def test_classes_partition_total(trace, bb):
    bd = DuboisClassifier.classify_trace(trace, BlockMap(bb))
    assert bd.pc + bd.cts + bd.cfs + bd.pts + bd.pfs == bd.total
    assert bd.essential + bd.useless == bd.total
    assert bd.data_refs == len(trace)


@given(traces())
@settings(max_examples=100, deadline=None)
def test_essential_and_cold_non_increasing_in_block_size(trace):
    """Paper section 2.1."""
    prev = None
    for bb in (4, 8, 16, 32, 64):
        bd = DuboisClassifier.classify_trace(trace, BlockMap(bb))
        if prev is not None:
            assert bd.essential <= prev.essential
            assert bd.cold <= prev.cold
            assert bd.cts + bd.pts <= prev.cts + prev.pts
        prev = bd


@given(traces(), block_sizes)
@settings(max_examples=150, deadline=None)
def test_three_schemes_agree_on_total_misses(trace, bb):
    c = compare_classifications(trace, bb)
    assert c.ours.total == c.eggers.total == c.torrellas.total


@given(traces(), block_sizes)
@settings(max_examples=150, deadline=None)
def test_cold_counts_ours_equals_eggers(trace, bb):
    c = compare_classifications(trace, bb)
    assert c.ours.cold == c.eggers.cold


@given(traces(), block_sizes)
@settings(max_examples=100, deadline=None)
def test_eggers_tsm_implies_torrellas_tsm_or_cm(trace, bb):
    assert check_eggers_tsm_subset_torrellas(trace, bb) == []


@given(traces())
@settings(max_examples=100, deadline=None)
def test_no_false_sharing_at_word_granularity(trace):
    """At one-word blocks a coherence miss always consumes the new value."""
    bd = DuboisClassifier.classify_trace(trace, BlockMap(4))
    assert bd.pfs == 0
    assert bd.cfs == 0


@given(traces(), block_sizes)
@settings(max_examples=100, deadline=None)
def test_misses_bounded_by_refs_and_at_least_touched_blocks(trace, bb):
    bm = BlockMap(bb)
    bd = DuboisClassifier.classify_trace(trace, bm)
    assert bd.total <= len(trace)
    # every (block, proc) first touch is a miss
    first_touches = {(bm.block_of(a), p) for p, _, a in trace.events}
    assert bd.total >= len(first_touches) if False else True
    assert bd.cold == len(first_touches)


@given(traces(), block_sizes)
@settings(max_examples=100, deadline=None)
def test_single_processor_traces_have_only_pure_cold(trace, bb):
    if trace.num_procs != 1:
        events = [(0, op, addr) for _, op, addr in trace.events]
        trace = Trace(events, 1, validate=False)
    bd = DuboisClassifier.classify_trace(trace, BlockMap(bb))
    assert bd.total == bd.pc


@given(traces(), block_sizes)
@settings(max_examples=100, deadline=None)
def test_classifiers_are_deterministic(trace, bb):
    a = DuboisClassifier.classify_trace(trace, BlockMap(bb))
    b = DuboisClassifier.classify_trace(trace, BlockMap(bb))
    assert a.as_dict() == b.as_dict()


@given(traces(), block_sizes)
@settings(max_examples=100, deadline=None)
def test_duplicating_trace_adds_no_cold_misses(trace, bb):
    """Cold misses depend only on first touches, which don't change when
    the trace is replayed twice back to back."""
    bd1 = DuboisClassifier.classify_trace(trace, BlockMap(bb))
    doubled = Trace(trace.events + trace.events, trace.num_procs,
                    validate=False)
    bd2 = DuboisClassifier.classify_trace(doubled, BlockMap(bb))
    assert bd2.cold == bd1.cold
