"""Unit tests for the ANL-style synchronization primitives."""

import pytest

from repro.errors import SimulationError
from repro.execution import ops
from repro.execution.primitives import Barrier, Flag, Lock, make_flags
from repro.execution.scheduler import Machine
from repro.mem.allocator import Allocator
from repro.trace.events import ACQUIRE, LOAD, RELEASE, STORE
from repro.trace.validate import check_races


class TestLock:
    def test_acquire_release_footprint(self):
        alloc = Allocator()
        lock = Lock("l", alloc)

        def t():
            yield from lock.acquire(0)
            yield from lock.release(0)

        trace = Machine(1).run([t()])
        ops_seq = [(op, a) for _, op, a in trace.events]
        assert ops_seq == [(ACQUIRE, lock.addr), (LOAD, lock.addr),
                           (STORE, lock.addr), (STORE, lock.addr),
                           (RELEASE, lock.addr)]

    def test_mutual_exclusion(self):
        alloc = Allocator()
        lock = Lock("l", alloc)
        shared = alloc.alloc_words("data", 1)
        inside = []

        def t(tid):
            yield from lock.acquire(tid)
            inside.append(("in", tid))
            yield from ops.read_modify_write(shared.base)
            inside.append(("out", tid))
            yield from lock.release(tid)

        Machine(2).run([t(0), t(1)])
        # critical sections never interleave
        for i in range(0, len(inside), 2):
            assert inside[i][0] == "in" and inside[i + 1][0] == "out"
            assert inside[i][1] == inside[i + 1][1]

    def test_lock_protected_data_is_race_free(self):
        alloc = Allocator()
        lock = Lock("l", alloc)
        shared = alloc.alloc_words("data", 1)

        def t(tid):
            yield from lock.acquire(tid)
            yield from ops.read_modify_write(shared.base)
            yield from lock.release(tid)

        trace = Machine(4).run([t(i) for i in range(4)])
        assert check_races(trace).is_race_free

    def test_wrong_holder_release_rejected(self):
        alloc = Allocator()
        lock = Lock("l", alloc)

        def bad():
            yield from lock.release(0)

        with pytest.raises(SimulationError):
            Machine(1).run([bad()])

    def test_holder_tracking(self):
        alloc = Allocator()
        lock = Lock("l", alloc)
        seen = []

        def t():
            yield from lock.acquire(7)
            seen.append(lock.holder)
            yield from lock.release(7)

        Machine(8).run([t()])
        assert seen == [7]
        assert lock.holder is None


class TestBarrier:
    def test_all_arrive_before_any_leaves(self):
        alloc = Allocator()
        barrier = Barrier("b", alloc, 3)
        log = []

        def t(tid):
            log.append(("before", tid))
            yield from barrier.wait(tid)
            log.append(("after", tid))
            yield ops.load(100 + tid)

        Machine(3).run([t(i) for i in range(3)])
        first_after = next(i for i, e in enumerate(log) if e[0] == "after")
        assert all(e[0] == "before" for e in log[:3])
        assert first_after >= 3

    def test_reusable_across_episodes(self):
        alloc = Allocator()
        barrier = Barrier("b", alloc, 2)

        def t(tid):
            for _ in range(3):
                yield ops.load(100 + tid)   # clear of the barrier's words
                yield from barrier.wait(tid)

        trace = Machine(2).run([t(0), t(1)])
        assert barrier.episodes == 3
        assert check_races(trace).is_race_free

    def test_barrier_orders_cross_processor_data(self):
        alloc = Allocator()
        barrier = Barrier("b", alloc, 2)
        data = alloc.alloc_words("d", 2)

        def producer():
            yield ops.store(data.base)
            yield from barrier.wait(0)

        def consumer():
            yield from barrier.wait(1)
            yield ops.load(data.base)

        trace = Machine(2).run([producer(), consumer()])
        assert check_races(trace).is_race_free

    def test_counter_flag_adjacent_by_default(self):
        alloc = Allocator()
        barrier = Barrier("b", alloc, 2)
        assert barrier.flag_addr == barrier.counter_addr + 1

    def test_padded_barrier_separates_words(self):
        from repro.mem import BlockMap
        alloc = Allocator()
        alloc.alloc_words("pad", 1)
        barrier = Barrier("b", alloc, 2, padded=True, pad_bytes=64)
        assert barrier.region.nbytes == 64

    def test_zero_threads_rejected(self):
        with pytest.raises(SimulationError):
            Barrier("b", Allocator(), 0)


class TestFlag:
    def test_set_then_wait(self):
        alloc = Allocator()
        flag = Flag("f", alloc)

        def setter():
            yield ops.store(100)
            yield from flag.set(0)

        def waiter():
            yield from flag.wait(1)
            yield ops.load(100)

        trace = Machine(2).run([setter(), waiter()])
        assert check_races(trace).is_race_free
        assert flag.is_set

    def test_wait_on_already_set_flag_does_not_block(self):
        alloc = Allocator()
        flag = Flag("f", alloc)

        def t():
            yield from flag.set(0)
            yield from flag.wait(0)

        trace = Machine(1).run([t()])
        # ST, REL, ACQ, LD
        assert [op for _, op, _ in trace.events] == [STORE, RELEASE,
                                                     ACQUIRE, LOAD]

    def test_many_waiters(self):
        alloc = Allocator()
        flag = Flag("f", alloc)

        def setter():
            yield ops.store(50)
            yield from flag.set(0)

        def waiter(tid):
            yield from flag.wait(tid)
            yield ops.load(50)

        trace = Machine(4).run([setter()] + [waiter(i) for i in (1, 2, 3)])
        assert check_races(trace).is_race_free


class TestMakeFlags:
    def test_adjacent_addresses(self):
        alloc = Allocator()
        flags = make_flags("f", alloc, 4)
        assert [f.addr for f in flags] == [0, 1, 2, 3]

    def test_names(self):
        flags = make_flags("col", Allocator(), 2)
        assert flags[1].name == "col[1]"
