"""Block-sharded execution: plan determinism, merge equivalence, resume.

Acceptance criteria covered here:

* for every small-suite workload and block size, ``shards=P`` produces
  `ProtocolResult` (breakdown + all counters) and `DuboisBreakdown`
  bit-identical to ``shards=1``, for all seven paper protocols;
* property test: for random sync traces, *any* shard count merges to the
  whole-trace result;
* checkpoint journal keys embed the shard-plan digest, so a resumed sweep
  re-runs only incomplete shards and never mixes plans;
* `Counters.as_dict` covers every dataclass field (the drift-hazard
  regression), and `Counters.merge` sums every field.
"""

import dataclasses
import os

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.engine import SweepEngine
from repro.classify.dubois import DuboisClassifier
from repro.errors import ConfigError, ProtocolError
from repro.mem.addresses import BlockMap
from repro.protocols import run_protocol, run_protocols
from repro.protocols.results import Counters, ProtocolResult, merge_shard_results
from repro.protocols.sharding import (
    SHARDABLE_PROTOCOLS,
    plan_for_trace,
    plan_shards,
    run_protocol_shard,
    run_protocol_sharded,
    shard_subtrace,
)
from repro.trace.events import ACQUIRE, LOAD, RELEASE, STORE
from repro.trace.trace import Trace

SEVEN = ("MIN", "OTF", "RD", "SD", "SRD", "WBWI", "MAX")


# ----------------------------------------------------------------------
# Counters: drift-hazard regression + merge
# ----------------------------------------------------------------------
class TestCounters:
    def test_as_dict_covers_every_field(self):
        """Regression: as_dict must be derived from dataclasses.fields so
        a counter added later can never silently vanish from reports."""
        c = Counters()
        expected = {f.name for f in dataclasses.fields(Counters)}
        assert set(c.as_dict()) == expected

    def test_as_dict_reflects_values(self):
        c = Counters()
        for i, f in enumerate(dataclasses.fields(Counters), start=1):
            setattr(c, f.name, i)
        assert c.as_dict() == {
            f.name: i
            for i, f in enumerate(dataclasses.fields(Counters), start=1)}

    def test_merge_sums_every_field(self):
        a, b = Counters(), Counters()
        for i, f in enumerate(dataclasses.fields(Counters), start=1):
            setattr(a, f.name, i)
            setattr(b, f.name, 10 * i)
        merged = Counters.merge([a, b])
        assert merged.as_dict() == {
            f.name: 11 * i
            for i, f in enumerate(dataclasses.fields(Counters), start=1)}

    def test_merge_rejects_non_int_counter(self):
        bad = Counters()
        bad.fetches = 1.5
        with pytest.raises(ProtocolError, match="not an int"):
            Counters.merge([Counters(), bad])


# ----------------------------------------------------------------------
# ShardPlan: determinism, balance, clamping
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_plan_is_deterministic(self):
        blocks = np.array([5, 1, 5, 2, 1, 5, 9, 9, 2, 2, 2])
        p1 = plan_shards(blocks, 2, 3)
        p2 = plan_shards(blocks.copy(), 2, 3)
        assert p1.digest == p2.digest
        assert np.array_equal(p1.assignment, p2.assignment)

    def test_digest_depends_on_shard_count_and_offset(self):
        blocks = np.arange(100) % 17
        base = plan_shards(blocks, 2, 4)
        assert plan_shards(blocks, 2, 2).digest != base.digest
        assert plan_shards(blocks, 4, 4).digest != base.digest

    def test_shards_clamped_to_distinct_blocks(self):
        plan = plan_shards(np.array([7, 7, 3]), 2, 16)
        assert plan.num_shards == 2
        assert sorted(plan.shard_events) == [1, 2]

    def test_empty_trace_plans_one_shard(self):
        plan = plan_shards(np.array([], dtype=np.int64), 2, 4)
        assert plan.num_shards == 1
        assert plan.shard_events == (0,)

    def test_lpt_balance_on_uniform_blocks(self):
        # 64 equally heavy blocks over 4 shards: perfectly balanced.
        blocks = np.repeat(np.arange(64), 5)
        plan = plan_shards(blocks, 2, 4)
        assert set(plan.shard_events) == {80}

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ConfigError):
            plan_shards(np.array([1]), 2, 0)

    def test_subtrace_keeps_all_sync_events(self, mp3d_trace):
        plan = plan_for_trace(mp3d_trace, BlockMap(64), 4)
        cols = mp3d_trace.columns()
        total_sync = int((~cols.data_mask()).sum())
        data_rows = 0
        for s in range(plan.num_shards):
            sub = shard_subtrace(mp3d_trace, plan, s)
            sub_cols = sub.columns()
            assert int((~sub_cols.data_mask()).sum()) == total_sync
            data_rows += int(sub_cols.data_mask().sum())
        assert data_rows == int(cols.data_mask().sum())

    def test_shard_out_of_range(self, mp3d_trace):
        plan = plan_for_trace(mp3d_trace, BlockMap(64), 2)
        with pytest.raises(ProtocolError, match="out of range"):
            shard_subtrace(mp3d_trace, plan, plan.num_shards)

    def test_unshardable_protocol_rejected(self, mp3d_trace):
        plan = plan_for_trace(mp3d_trace, BlockMap(64), 2)
        with pytest.raises(ProtocolError, match="not block-shardable"):
            run_protocol_shard("FINITE", mp3d_trace, 64, plan, 0)

    def test_block_size_mismatch_rejected(self, mp3d_trace):
        plan = plan_for_trace(mp3d_trace, BlockMap(64), 2)
        with pytest.raises(ProtocolError, match="offset_bits"):
            run_protocol_shard("OTF", mp3d_trace, 256, plan, 0)


# ----------------------------------------------------------------------
# merge_shard_results validation
# ----------------------------------------------------------------------
class TestMergeValidation:
    def test_empty_merge_rejected(self):
        with pytest.raises(ProtocolError, match="empty"):
            merge_shard_results([])

    def test_identity_mismatch_rejected(self, mp3d_trace):
        a = run_protocol("OTF", mp3d_trace, 64)
        b = run_protocol("MIN", mp3d_trace, 64)
        with pytest.raises(ProtocolError, match="disagree on protocol"):
            merge_shard_results([a, b])
        c = run_protocol("OTF", mp3d_trace, 256)
        with pytest.raises(ProtocolError, match="disagree on block_bytes"):
            merge_shard_results([a, c])


# ----------------------------------------------------------------------
# equivalence: sharded == whole-trace, bit-identical
# ----------------------------------------------------------------------
class TestShardEquivalence:
    @pytest.mark.parametrize("name", sorted(SHARDABLE_PROTOCOLS))
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_workload_protocols_bit_identical(self, mp3d_trace, name,
                                              shards):
        whole = run_protocol(name, mp3d_trace, 64)
        merged = run_protocol_sharded(name, mp3d_trace, 64, shards)
        assert merged == whole  # dataclass equality: breakdown + counters

    @pytest.mark.parametrize("bb", [16, 256, 1024])
    def test_block_sizes_bit_identical(self, workload_traces, bb):
        for trace in workload_traces.values():
            for name in SEVEN:
                assert (run_protocol_sharded(name, trace, bb, 4)
                        == run_protocol(name, trace, bb))

    @pytest.mark.parametrize("shards", [2, 5])
    def test_engine_classifier_shards_bit_identical(self, mp3d_trace,
                                                    shards):
        cells = [("classify", bb, "dubois") for bb in (16, 64, 1024)]
        serial = SweepEngine(mp3d_trace, shards=1).run_grid(cells)
        sharded = SweepEngine(mp3d_trace, shards=shards).run_grid(cells)
        assert serial == sharded
        for bd, bb in zip(serial, (16, 64, 1024)):
            assert bd == DuboisClassifier.classify_trace(
                mp3d_trace, BlockMap(bb))

    def test_engine_mixed_grid_with_parallel_workers(self, mp3d_trace):
        cells = [("protocol", 64, name) for name in SEVEN]
        cells += [("classify", 64, "dubois"), ("compare", 64, None)]
        serial = SweepEngine(mp3d_trace, jobs=1).run_grid(cells)
        sharded = SweepEngine(mp3d_trace, jobs=2, shards=3).run_grid(cells)
        assert serial == sharded

    def test_auto_mode_shards_small_grids_only(self, mp3d_trace):
        engine = SweepEngine(mp3d_trace, jobs=4)
        # grid >= jobs: plain fan-out.
        assert engine._shards_per_cell(8) == 1
        assert engine._shards_per_cell(4) == 1
        # grid < jobs: spare workers split into shards.
        assert engine._shards_per_cell(2) == 2
        assert engine._shards_per_cell(1) == 4
        assert engine._shards_per_cell(0) == 1
        # explicit shard counts always win.
        assert SweepEngine(mp3d_trace, jobs=4,
                           shards=3)._shards_per_cell(100) == 3
        assert SweepEngine(mp3d_trace, jobs=1,
                           shards=2)._shards_per_cell(5) == 2

    def test_auto_mode_result_matches_serial(self, mp3d_trace):
        cells = [("protocol", 1024, "SD")]
        serial = SweepEngine(mp3d_trace, jobs=1).run_grid(cells)
        auto = SweepEngine(mp3d_trace, jobs=2).run_grid(cells)
        assert serial == auto

    def test_negative_shards_rejected(self, mp3d_trace):
        with pytest.raises(ConfigError):
            SweepEngine(mp3d_trace, shards=-1)

    def test_run_protocols_with_shards_option(self, mp3d_trace):
        from repro.analysis.engine import ExecutionOptions

        plain = run_protocols(mp3d_trace, 64, ("MIN", "MAX"))
        sharded = run_protocols(mp3d_trace, 64, ("MIN", "MAX"),
                                options=ExecutionOptions(shards=3))
        assert plain == sharded


# ----------------------------------------------------------------------
# property test: any partition merges to the whole-trace result
# ----------------------------------------------------------------------
MAX_PROCS = 4
MAX_WORDS = 16


@st.composite
def sync_traces(draw, max_events=60):
    """Random traces with data and acquire/release events (races allowed)."""
    n = draw(st.integers(1, max_events))
    nproc = draw(st.integers(1, MAX_PROCS))
    events = []
    for _ in range(n):
        proc = draw(st.integers(0, nproc - 1))
        kind = draw(st.integers(0, 9))
        if kind <= 6:
            events.append((proc, draw(st.sampled_from((LOAD, STORE))),
                           draw(st.integers(0, MAX_WORDS - 1))))
        elif kind <= 8:
            events.append((proc, ACQUIRE, 1000 + proc))
        else:
            events.append((proc, RELEASE, 1000 + proc))
    return Trace(events, nproc, validate=False)


@given(sync_traces(), st.sampled_from((4, 8, 16)), st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_any_partition_merges_bit_identical(trace, bb, shards):
    for name in SEVEN:
        whole = run_protocol(name, trace, bb)
        merged = run_protocol_sharded(name, trace, bb, shards)
        assert merged == whole, (name, bb, shards)


@given(sync_traces(), st.sampled_from((4, 8, 16)), st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_classifier_partition_merges_bit_identical(trace, bb, shards):
    whole = DuboisClassifier.classify_trace(trace, BlockMap(bb))
    engine = SweepEngine(trace, shards=shards)
    (merged,) = engine.run_grid([("classify", bb, "dubois")])
    assert merged == whole


# ----------------------------------------------------------------------
# checkpoint: shard-plan-aware journal keys
# ----------------------------------------------------------------------
class TestShardCheckpoint:
    CELLS = [("protocol", 64, "OTF"), ("protocol", 64, "SD")]

    def test_shard_partials_journaled_under_digest_keys(self, tmp_path,
                                                        mp3d_trace,
                                                        monkeypatch):
        import json

        from repro.runtime.checkpoint import CheckpointJournal

        ckpt = str(tmp_path)
        # Observe journal appends at record time: after a successful grid
        # the engine compacts the journal, dropping absorbed partials.
        recorded = []
        original = CheckpointJournal.record

        def spy(journal, cell, result):
            recorded.append(tuple(cell))
            return original(journal, cell, result)

        monkeypatch.setattr(CheckpointJournal, "record", spy)
        engine = SweepEngine(mp3d_trace, shards=2, checkpoint_dir=ckpt)
        engine.run_grid(self.CELLS)
        plan = engine.precompute.shard_plan(BlockMap(64), 2)
        for bb, name in ((64, "OTF"), (64, "SD")):
            for s in range(plan.num_shards):
                assert ("protocol-shard", bb, name, plan.digest,
                        s) in recorded
            assert ("protocol", bb, name) in recorded
        # Post-compaction the file keeps one line per merged parent cell
        # (plus the header); the absorbed shard partials are gone.
        path = os.path.join(ckpt, f"{engine.trace_key}.jsonl")
        with open(path) as fh:
            kept = [tuple(rec["cell"]) for rec in map(json.loads, fh)
                    if "cell" in rec]
        assert set(kept) == {("protocol", 64, "OTF"), ("protocol", 64, "SD")}

    def test_resume_reruns_only_incomplete_shards(self, tmp_path,
                                                  mp3d_trace):
        """Kill after one shard of one cell: the resume re-runs only the
        remaining shards (and merges), never the completed shard."""
        ckpt = str(tmp_path)
        cell = ("protocol", 64, "MAX")
        first = SweepEngine(mp3d_trace, shards=3, checkpoint_dir=ckpt)
        plan = first.precompute.shard_plan(BlockMap(64), 3)
        # Simulate the kill: journal exactly one completed shard partial.
        from repro.runtime.checkpoint import CheckpointJournal

        partial = first.precompute.run_cell(
            ("protocol-shard", 64, "MAX", plan.digest, 0))
        journal = CheckpointJournal(ckpt, first.trace_key)
        journal.record(("protocol-shard", 64, "MAX", plan.digest, 0),
                       partial)
        journal.close()

        engine = SweepEngine(mp3d_trace, shards=3, checkpoint_dir=ckpt)
        ran = []
        pre = engine.precompute
        original = pre.run_cell
        pre.run_cell = lambda c: (ran.append(c), original(c))[1]
        (result,) = engine.run_grid([cell])
        assert ran == [("protocol-shard", 64, "MAX", plan.digest, s)
                       for s in (1, 2)]
        assert result == run_protocol("MAX", mp3d_trace, 64)

    def test_resume_never_mixes_shard_plans(self, tmp_path, mp3d_trace):
        """Partials journaled under one plan are ignored by a resume with
        a different shard count (different digest), not merged."""
        ckpt = str(tmp_path)
        cell = ("protocol", 64, "SRD")
        first = SweepEngine(mp3d_trace, shards=4, checkpoint_dir=ckpt)
        plan4 = first.precompute.shard_plan(BlockMap(64), 4)
        from repro.runtime.checkpoint import CheckpointJournal

        partial = first.precompute.run_cell(
            ("protocol-shard", 64, "SRD", plan4.digest, 0))
        journal = CheckpointJournal(ckpt, first.trace_key)
        journal.record(("protocol-shard", 64, "SRD", plan4.digest, 0),
                       partial)
        journal.close()

        engine = SweepEngine(mp3d_trace, shards=2, checkpoint_dir=ckpt)
        plan2 = engine.precompute.shard_plan(BlockMap(64), 2)
        assert plan2.digest != plan4.digest
        ran = []
        pre = engine.precompute
        original = pre.run_cell
        pre.run_cell = lambda c: (ran.append(c), original(c))[1]
        (result,) = engine.run_grid([cell])
        # Every shard of the *new* plan ran; the stale partial was unused.
        assert ran == [("protocol-shard", 64, "SRD", plan2.digest, s)
                       for s in range(plan2.num_shards)]
        assert result == run_protocol("SRD", mp3d_trace, 64)

    def test_merged_cell_resumes_without_any_rerun(self, tmp_path,
                                                   mp3d_trace):
        ckpt = str(tmp_path)
        SweepEngine(mp3d_trace, shards=2,
                    checkpoint_dir=ckpt).run_grid(self.CELLS)
        # Resume with a *different* shard setting: the merged results are
        # journaled under the plain cell keys, so nothing re-runs.
        engine = SweepEngine(mp3d_trace, shards=5, checkpoint_dir=ckpt)
        ran = []
        pre = engine.precompute
        original = pre.run_cell
        pre.run_cell = lambda c: (ran.append(c), original(c))[1]
        results = engine.run_grid(self.CELLS)
        assert ran == []
        assert results == [run_protocol("OTF", mp3d_trace, 64),
                           run_protocol("SD", mp3d_trace, 64)]


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestCLI:
    def test_shards_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["simulate", "MATMUL24", "--shards", "4", "--jobs", "2"])
        assert args.shards == 4
        assert args.jobs == 2
        args = build_parser().parse_args(["fig6", "--shards", "1"])
        assert args.shards == 1

    def test_simulate_with_shards_matches_plain(self, capsys):
        from repro.cli import main

        assert main(["simulate", "MATMUL24", "--protocol", "OTF"]) == 0
        plain = capsys.readouterr().out
        assert main(["simulate", "MATMUL24", "--protocol", "OTF",
                     "--shards", "3"]) == 0
        assert capsys.readouterr().out == plain
