"""Resource-governor suite: budgets, OOM classification, degradation.

Covers the acceptance criteria of the resource-governance layer:

* human-size parsing and exitcode classification units (SIGKILL/137 is
  OOM-class and spelled by signal name, SIGSEGV is crash-class);
* the footprint model is an *upper bound*: a parallel sweep whose workers
  are hard-capped (``RLIMIT_AS``) at the model's estimate completes with
  zero OOM-class failures;
* preflight admission clamps concurrency, raises shard counts, and falls
  back to serial when even one worker cannot fit;
* a worker ``MemoryError`` is classified ``oom`` and, with
  ``oom_action="raise"``, aborts with a structured
  :class:`~repro.errors.ResourceExhaustedError` carrying attempt history
  and partials;
* the headline guarantee: a sweep whose workers *always* exhaust memory
  degrades down the ladder to serial in-process execution and still
  produces results bit-identical to an unconstrained run.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import warnings

import pytest

import repro
from repro.analysis.engine import ExecutionOptions, SweepEngine
from repro.cli import build_parser, _engine_options
from repro.errors import (
    CellFailedError,
    ConfigError,
    ResourceExhaustedError,
)
from repro.runtime import (
    FaultPlan,
    RetryPolicy,
    Supervisor,
    exhaust_address_space,
)
from repro.runtime.resources import (
    DEFAULT_FOOTPRINT_MODEL,
    FootprintModel,
    MEMORY_BUDGET_ENV,
    classify_exitcode,
    degradation_rungs,
    ensure_free_space,
    estimate_cell_bytes,
    format_size,
    parse_size,
    peak_rss_bytes,
    plan_admission,
    resolve_memory_budget,
)
from repro.trace.trace import Trace
from repro.workloads.registry import make_workload

#: Block sizes of the Figure-5-style acceptance sweep.
SIZES = (4, 16, 64, 256, 1024)

#: Fast retry policy so failure scenarios stay sub-second.
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05)


@pytest.fixture(scope="module")
def trace():
    """A deterministic prefix of MP3D200 (structure without scale)."""
    full = make_workload("MP3D200").generate()
    return Trace(full.events[:6000], full.num_procs, name="MP3D200",
                 copy=False)


@pytest.fixture(scope="module")
def clean_sweep(trace):
    """The unconstrained serial sweep every governed run must reproduce."""
    return SweepEngine(trace).classify_sweep(SIZES)


# ----------------------------------------------------------------------
# size parsing
# ----------------------------------------------------------------------
class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("4096", 4096),
        ("512M", 512 << 20),
        ("512MB", 512 << 20),
        ("1.5G", int(1.5 * (1 << 30))),
        ("2k", 2048),
        ("0", 0),
        (1234, 1234),  # ints pass through
    ])
    def test_accepts(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "lots", "12X", "1.2.3G", "-1G"])
    def test_rejects(self, text):
        with pytest.raises(ConfigError):
            parse_size(text)

    def test_format_size_roundtrips_magnitude(self):
        assert format_size(512) == "512B"
        assert format_size(512 << 20) == "512.0M"
        assert parse_size(format_size(3 << 30)) == 3 << 30

    def test_resolve_budget_prefers_explicit(self, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "1G")
        assert resolve_memory_budget(123) == 123
        assert resolve_memory_budget(None) == 1 << 30
        monkeypatch.delenv(MEMORY_BUDGET_ENV)
        assert resolve_memory_budget(None) is None


# ----------------------------------------------------------------------
# exitcode classification (satellite: signal names in attempt history)
# ----------------------------------------------------------------------
class TestClassifyExitcode:
    def test_sigkill_is_oom_class_and_named(self):
        kind, desc = classify_exitcode(-int(signal.SIGKILL))
        assert kind == "oom"
        assert "SIGKILL" in desc

    def test_shell_style_137_is_oom_class(self):
        kind, desc = classify_exitcode(137)
        assert kind == "oom"
        assert "SIGKILL" in desc

    def test_sigsegv_is_crash_class_and_named(self):
        kind, desc = classify_exitcode(-int(signal.SIGSEGV))
        assert kind == "crash"
        assert "SIGSEGV" in desc

    def test_nonzero_exit_is_crash(self):
        assert classify_exitcode(17)[0] == "crash"

    def test_clean_exit_with_work_outstanding(self):
        assert classify_exitcode(0)[0] == "exit"

    def test_unknown_status(self):
        assert classify_exitcode(None)[0] == "crash"


# ----------------------------------------------------------------------
# footprint model + admission
# ----------------------------------------------------------------------
class TestFootprintModel:
    def test_monotonic_in_events(self):
        m = DEFAULT_FOOTPRINT_MODEL
        assert m.cell_bytes(1000) < m.cell_bytes(100000)

    def test_sharding_shrinks_the_estimate(self):
        m = DEFAULT_FOOTPRINT_MODEL
        assert m.cell_bytes(100000, shards=4) < m.cell_bytes(100000)
        # but never below the per-worker base
        assert m.cell_bytes(100000, shards=10**6) >= m.worker_base_bytes

    def test_estimate_accepts_trace_or_count(self, trace):
        assert estimate_cell_bytes(trace) == estimate_cell_bytes(len(trace))

    def test_custom_model(self):
        m = FootprintModel(worker_base_bytes=10, bytes_per_event=2,
                           bytes_per_block_proc=3)
        assert estimate_cell_bytes(100, model=m) == 10 + 100 * 5

    def test_peak_rss_is_measurable(self):
        assert peak_rss_bytes("self") > 0


class TestPlanAdmission:
    def test_budget_fits_everything(self):
        adm = plan_admission(10 << 30, jobs=4, shards=1,
                             estimate=lambda s: 100 << 20)
        assert adm.jobs == 4 and adm.shards == 1 and not adm.over_budget
        assert adm.worker_cap_bytes >= 100 << 20

    def test_jobs_clamped_to_fit(self):
        adm = plan_admission(250, jobs=8, shards=1, estimate=lambda s: 100)
        assert adm.jobs == 2  # 2 x 100 fits, 3 x 100 does not
        assert adm.worker_cap_bytes >= 100

    def test_shards_doubled_until_one_worker_fits(self):
        adm = plan_admission(300, jobs=4, shards=1,
                             estimate=lambda s: -(-1000 // s))
        assert adm.shards == 4          # 1000 -> 500 -> 250 fits
        assert adm.jobs == 1            # 300 // 250
        assert not adm.over_budget

    def test_unshardable_over_budget_goes_serial_uncapped(self):
        adm = plan_admission(10, jobs=4, shards=1, estimate=lambda s: 1000,
                             shardable=False)
        assert adm.over_budget and adm.jobs == 1
        assert adm.worker_cap_bytes is None
        assert "over budget" in adm.describe()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigError):
            plan_admission(0, jobs=1, shards=1, estimate=lambda s: 1)


class TestDegradationRungs:
    def test_full_ladder(self):
        rungs = degradation_rungs(8, None)
        assert [(r.jobs, r.serial) for r in rungs] == [
            (8, False), (4, False), (4, False), (1, True)]
        assert rungs[2].shards == 2          # doubled from unsharded
        assert rungs[-1].serial and rungs[-1].shards == 1

    def test_doubling_respects_configured_shards(self):
        rungs = degradation_rungs(8, 3)
        assert rungs[2].shards == 6

    def test_small_engines_skip_degenerate_rungs(self):
        assert [(r.jobs, r.serial) for r in degradation_rungs(2, None)] == [
            (2, False), (1, True)]
        assert [(r.jobs, r.serial) for r in degradation_rungs(1, None)] == [
            (1, False), (1, True)]


# ----------------------------------------------------------------------
# per-worker RLIMIT_AS caps
# ----------------------------------------------------------------------
class TestWorkerRlimit:
    def test_none_is_a_noop(self):
        from repro.runtime.resources import apply_worker_rlimit
        assert apply_worker_rlimit(None) is None

    def test_capped_process_gets_clean_memoryerror(self):
        """A capped process fails a big allocation with MemoryError."""
        code = (
            "from repro.runtime.resources import apply_worker_rlimit\n"
            "installed = apply_worker_rlimit(64 << 20)\n"
            "assert installed, 'no cap could be installed'\n"
            "try:\n"
            "    block = bytearray(512 << 20)\n"
            "    print('UNCAPPED')\n"
            "except MemoryError:\n"
            "    print('CLEAN-OOM')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "CLEAN-OOM"

    def test_exhaust_fault_raises_without_a_cap(self):
        # In an uncapped process the fault must not actually allocate.
        with pytest.raises(MemoryError, match="exhaust_memory"):
            exhaust_address_space()


# ----------------------------------------------------------------------
# supervisor OOM semantics
# ----------------------------------------------------------------------
class TestSupervisorOOM:
    def test_worker_memoryerror_retries_by_default(self):
        plan = FaultPlan(exhaust_memory={1: 1})  # task index 1, attempt 1
        sup = Supervisor(lambda t: t * 2, jobs=2, retry=FAST_RETRY,
                         fault_plan=plan)
        assert sup.run(["a", "b", "c", "d"]) == ["aa", "bb", "cc", "dd"]

    def test_oom_action_raise_aborts_with_structured_error(self):
        plan = FaultPlan(exhaust_memory={1: 99})  # task index 1, forever
        sup = Supervisor(lambda t: t * 2, jobs=2, retry=FAST_RETRY,
                         fault_plan=plan, oom_action="raise")
        with pytest.raises(ResourceExhaustedError) as ei:
            sup.run(["a", "b", "c", "d"])
        exc = ei.value
        assert exc.kind == "memory"
        assert exc.cell == "b"
        assert exc.attempts[-1]["kind"] == "oom"
        assert all(v == t * 2 for t, v in exc.partial.items())

    def test_rejects_unknown_oom_action(self):
        with pytest.raises(ValueError):
            Supervisor(lambda t: t, oom_action="explode")

    def test_sigkilled_worker_classified_oom_by_name(self):
        """A worker SIGKILL death surfaces as OOM-class, spelled SIGKILL."""
        def runner(task):
            if (task == "victim" and multiprocessing.current_process()
                    .name != "MainProcess"):
                os.kill(os.getpid(), signal.SIGKILL)
            return task

        sup = Supervisor(runner, jobs=2, retry=FAST_RETRY,
                         oom_action="raise")
        with pytest.raises(ResourceExhaustedError) as ei:
            sup.run(["a", "victim", "b", "c"])
        last = ei.value.attempts[-1]
        assert last["kind"] == "oom"
        assert "SIGKILL" in last["error"]

    def test_signal_name_in_cellfailed_attempt_history(self):
        """Satellite: dead-worker errors name the signal, not a bare code."""
        def runner(task):
            if task == "victim":
                if (multiprocessing.current_process().name
                        != "MainProcess"):
                    os.kill(os.getpid(), signal.SIGTERM)
                raise RuntimeError("serial fallback fails too")
            return task

        sup = Supervisor(runner, jobs=2, retry=FAST_RETRY)
        with pytest.raises(CellFailedError) as ei:
            sup.run(["a", "victim", "b", "c"])
        history = ei.value.attempts
        assert any(h.get("kind") == "crash"
                   and "SIGTERM" in (h.get("error") or "")
                   for h in history), history


# ----------------------------------------------------------------------
# calibration: the model is an upper bound on real worker growth
# ----------------------------------------------------------------------
class TestCalibration:
    def test_capped_at_estimate_sweep_has_zero_oom(self, trace, clean_sweep):
        """Workers hard-capped at the model's estimate never hit the cap.

        This is the calibration check the admission policy relies on: if
        the footprint model ever under-estimated a cell, the `RLIMIT_AS`
        cap would convert the overshoot into an OOM-class failure and the
        governed sweep would degrade (observable as a resource-governor
        warning) — so a clean, warning-free, bit-identical run *is* the
        upper-bound proof.
        """
        budget = 2 * estimate_cell_bytes(trace)
        engine = SweepEngine(trace, jobs=4, memory_budget=budget,
                             retry=FAST_RETRY)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            panel = engine.classify_sweep(SIZES)
        assert panel == clean_sweep
        assert not any("OOM-class" in str(w.message) for w in caught), \
            [str(w.message) for w in caught]


# ----------------------------------------------------------------------
# the degradation ladder, end to end
# ----------------------------------------------------------------------
class TestDegradationLadder:
    def test_always_oom_workers_degrade_to_serial_bit_identical(
            self, trace, clean_sweep):
        """Headline acceptance: every worker attempt exhausts memory, yet
        the sweep finishes — serial-degraded — with results bit-identical
        to the unconstrained run, and no kernel OOM kill involved."""
        # Key the fault by task *index* so it also fires for the shard
        # subtasks the middle rungs schedule; it never fires on the
        # serial in-process path (worker-only, like a real worker OOM).
        plan = FaultPlan(exhaust_memory={i: 99 for i in range(64)})
        engine = SweepEngine(trace, jobs=4, retry=FAST_RETRY,
                             fault_plan=plan)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            panel = engine.classify_sweep(SIZES)
        assert panel == clean_sweep
        messages = [str(w.message) for w in caught]
        assert any("OOM-class failure" in m for m in messages), messages
        assert any("serial in-process" in m for m in messages), messages

    def test_ladder_salvages_partials_between_rungs(self, trace,
                                                    clean_sweep):
        """Cells completed before the OOM are not recomputed: the failing
        cell's fault is index-keyed to the *first rung's* task order, so a
        later rung re-running everything would fault again and diverge."""
        cells = [("classify", bb, "dubois") for bb in SIZES]
        # Only the last cell OOMs, and only in workers, forever.
        plan = FaultPlan(exhaust_memory={cells[-1]: 99})
        engine = SweepEngine(trace, jobs=2, shards=1, retry=FAST_RETRY,
                             fault_plan=plan)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            panel = engine.classify_sweep(SIZES)
        assert panel == clean_sweep
        assert any("salvaged" in str(w.message) for w in caught)

    def test_over_budget_engine_runs_serial_and_completes(self, trace,
                                                          clean_sweep):
        """A budget smaller than one worker's base footprint cannot admit
        any parallel worker: the sweep warns and runs serial, uncapped."""
        engine = SweepEngine(trace, jobs=4, memory_budget=1024,
                             retry=FAST_RETRY)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            panel = engine.classify_sweep(SIZES)
        assert panel == clean_sweep
        assert any("serial and uncapped" in str(w.message) for w in caught)

    def test_env_budget_governs_without_flags(self, trace, monkeypatch):
        monkeypatch.setenv(MEMORY_BUDGET_ENV, "1024")
        engine = SweepEngine(trace, jobs=2)
        assert engine.memory_budget == 1024


# ----------------------------------------------------------------------
# disk preflight
# ----------------------------------------------------------------------
class TestDiskPreflight:
    def test_impossible_requirement_raises_disk_kind(self, tmp_path):
        with pytest.raises(ResourceExhaustedError) as ei:
            ensure_free_space(str(tmp_path), 1 << 62, label="test write")
        exc = ei.value
        assert exc.kind == "disk"
        assert exc.needed_bytes == 1 << 62
        assert "test write" in str(exc)

    def test_satisfiable_requirement_passes(self, tmp_path):
        ensure_free_space(str(tmp_path), 1, label="test write")

    def test_missing_directory_probes_existing_parent(self, tmp_path):
        ensure_free_space(str(tmp_path / "not" / "yet" / "made"), 1)


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
class TestCli:
    def test_memory_budget_flag_parses_sizes(self):
        args = build_parser().parse_args(
            ["fig5", "--memory-budget", "512M"])
        assert args.memory_budget == 512 << 20

    def test_cache_max_bytes_flag_parses_sizes(self):
        args = build_parser().parse_args(
            ["fig5", "--trace-cache", "--cache-max-bytes", "1G"])
        assert args.cache_max_bytes == 1 << 30

    def test_bad_size_is_a_clean_argparse_error(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--memory-budget", "lots"])
        assert "cannot parse size" in capsys.readouterr().err

    def test_engine_options_thread_the_budget(self):
        args = build_parser().parse_args(
            ["fig5", "--memory-budget", "256M"])
        options = _engine_options(args)
        assert options is not None
        assert options.memory_budget == 256 << 20
        assert options.engine_kwargs()["memory_budget"] == 256 << 20

    def test_defaults_leave_options_none(self):
        assert _engine_options(build_parser().parse_args(["fig5"])) is None

    def test_execution_options_default_budget_is_none(self):
        assert ExecutionOptions().memory_budget is None
