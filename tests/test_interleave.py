"""Unit tests for interleaving utilities."""

import pytest

from repro.errors import TraceError
from repro.trace import TraceBuilder
from repro.trace.events import LOAD, STORE
from repro.trace.interleave import (
    random_interleave,
    reinterleave,
    reinterleave_sync_safe,
    round_robin,
)


def two_streams():
    return {0: [(0, LOAD, i) for i in range(4)],
            1: [(1, STORE, 10 + i) for i in range(4)]}


def program_order_preserved(trace):
    streams = {}
    for ev in trace.events:
        streams.setdefault(ev[0], []).append(ev)
    for p, evs in streams.items():
        addrs = [a for _, _, a in evs]
        assert addrs == sorted(addrs), f"P{p} order broken"


class TestRoundRobin:
    def test_alternates(self):
        t = round_robin(two_streams())
        assert [ev[0] for ev in t.events] == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_quantum(self):
        t = round_robin(two_streams(), quantum=2)
        assert [ev[0] for ev in t.events] == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_uneven_streams(self):
        streams = {0: [(0, LOAD, 0)], 1: [(1, LOAD, 1), (1, LOAD, 2)]}
        t = round_robin(streams)
        assert len(t) == 3
        program_order_preserved(t)

    def test_bad_quantum(self):
        with pytest.raises(TraceError):
            round_robin(two_streams(), quantum=0)

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            round_robin({})


class TestRandomInterleave:
    def test_deterministic_given_seed(self):
        a = random_interleave(two_streams(), seed=5)
        b = random_interleave(two_streams(), seed=5)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = random_interleave(two_streams(), seed=1)
        b = random_interleave(two_streams(), seed=2)
        assert a.events != b.events  # 8 events, astronomically unlikely equal

    def test_program_order_preserved(self):
        t = random_interleave(two_streams(), seed=3)
        program_order_preserved(t)
        assert len(t) == 8


class TestReinterleave:
    def test_preserves_multiset_and_order(self):
        base = (TraceBuilder(2)
                .load(0, 0).load(0, 1).store(1, 5).load(1, 6).build("b"))
        out = reinterleave(base, seed=11)
        assert sorted(out.events) == sorted(base.events)
        assert out.per_processor() == base.per_processor()


class TestSyncSafeReinterleave:
    def test_sync_events_stay_put_relative(self):
        base = (TraceBuilder(2)
                .load(0, 0).store(1, 9).acquire(0, 100)
                .load(0, 1).load(1, 8).release(0, 100)
                .build("s"))
        out = reinterleave_sync_safe(base, seed=4)
        base_sync = [ev for ev in base.events if ev[1] >= 2]
        out_sync = [ev for ev in out.events if ev[1] >= 2]
        assert base_sync == out_sync
        assert out.per_processor() == base.per_processor()
        assert sorted(out.events) == sorted(base.events)

    def test_data_never_crosses_sync_boundary(self):
        base = (TraceBuilder(1)
                .load(0, 0).release(0, 100).load(0, 1).build())
        out = reinterleave_sync_safe(base, seed=1)
        # with one processor nothing can move at all
        assert out.events == base.events
