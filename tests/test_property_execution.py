"""Property-based tests for the simulated multiprocessor."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.execution import ops
from repro.execution.scheduler import Machine
from repro.trace.events import LOAD, STORE


@st.composite
def programs(draw):
    """Random straight-line per-processor programs (no blocking)."""
    nproc = draw(st.integers(1, 4))
    bodies = []
    for _ in range(nproc):
        n = draw(st.integers(0, 20))
        body = [(draw(st.sampled_from((LOAD, STORE))),
                 draw(st.integers(0, 31))) for _ in range(n)]
        bodies.append(body)
    return nproc, bodies


def make_thread(body):
    def gen():
        for op, addr in body:
            yield (ops.MEM, op, addr)
    return gen()


@given(programs(), st.sampled_from(("rotate", "fixed", "random")))
@settings(max_examples=100, deadline=None)
def test_machine_emits_every_instruction_exactly_once(program, order):
    nproc, bodies = program
    machine = Machine(nproc, order=order, seed=7)
    trace = machine.run([make_thread(b) for b in bodies])
    assert len(trace) == sum(len(b) for b in bodies)
    streams = trace.per_processor()
    for p, body in enumerate(bodies):
        got = [(op, addr) for _, op, addr in streams.get(p, [])]
        assert got == body, f"P{p} program order broken under {order}"


@given(programs())
@settings(max_examples=60, deadline=None)
def test_cycles_bounded_by_longest_thread_and_total(program):
    nproc, bodies = program
    machine = Machine(nproc)
    trace = machine.run([make_thread(b) for b in bodies])
    total = sum(len(b) for b in bodies)
    longest = max((len(b) for b in bodies), default=0)
    cycles = trace.meta["cycles"]
    # Perfect parallelism bound below, serialization bound above.
    assert longest <= cycles <= max(total, longest) or total == 0


@given(programs(), st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_random_order_deterministic_per_seed(program, seed):
    nproc, bodies = program
    a = Machine(nproc, order="random", seed=seed).run(
        [make_thread(b) for b in bodies])
    b = Machine(nproc, order="random", seed=seed).run(
        [make_thread(body) for body in bodies])
    assert a.events == b.events


@given(programs())
@settings(max_examples=40, deadline=None)
def test_blocking_on_counter_preserves_order(program):
    """Insert a flag-style dependency: every processor waits for P0's
    first instruction.  The machine must still terminate and order P0's
    first event before all waiters' events."""
    nproc, bodies = program
    if not bodies or not bodies[0]:
        return
    state = {"go": False}

    def leader():
        op, addr = bodies[0][0]
        yield (ops.MEM, op, addr)
        state["go"] = True
        for op, addr in bodies[0][1:]:
            yield (ops.MEM, op, addr)

    def follower(body):
        def gen():
            yield ops.block_until(lambda: state["go"])
            for op, addr in body:
                yield (ops.MEM, op, addr)
        return gen()

    threads = [leader()] + [follower(b) for b in bodies[1:]]
    trace = Machine(nproc).run(threads)
    assert len(trace) == sum(len(b) for b in bodies)
    if len(trace) > 1:
        first_p0 = next(i for i, ev in enumerate(trace.events)
                        if ev[0] == 0)
        others_first = next((i for i, ev in enumerate(trace.events)
                             if ev[0] != 0), None)
        if others_first is not None:
            assert first_p0 < others_first
