"""Unit tests for the write-update and competitive-update extensions."""

import pytest

from repro.errors import ConfigError
from repro.mem import BlockMap
from repro.protocols import CUProtocol, run_protocol, run_protocols
from repro.trace import TraceBuilder
from repro.trace.synth import (
    false_sharing_pingpong,
    producer_consumer,
    read_mostly,
)


class TestWU:
    def test_only_cold_misses(self, producer_trace):
        r = run_protocol("WU", producer_trace, 16)
        assert r.breakdown.pts == 0
        assert r.breakdown.pfs == 0
        assert r.misses == r.breakdown.cold

    def test_updates_deliver_values(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0)    # update pushed into P0's copy
             .load(0, 0)     # hit, current value
             .build())
        r = run_protocol("WU", t, 4)
        assert r.misses == 2
        assert r.counters.write_throughs == 1

    def test_can_beat_invalidate_minimum(self, producer_trace):
        """Updates communicate without re-fetching: fewer misses than MIN
        (the paper's closing argument for update protocols)."""
        res = run_protocols(producer_trace, 16, ["MIN", "WU"])
        assert res["WU"].misses < res["MIN"].misses

    def test_update_traffic_scales_with_sharers(self):
        t = (TraceBuilder(4)
             .load(1, 0).load(2, 0).load(3, 0)
             .store(0, 0)
             .build())
        r = run_protocol("WU", t, 4)
        assert r.counters.write_throughs == 3

    def test_no_invalidations_ever(self, random_trace):
        r = run_protocol("WU", random_trace, 16)
        assert r.counters.invalidations_applied == 0


class TestCU:
    def test_threshold_one_acts_like_invalidate(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0)    # first unused update hits threshold: drop
             .load(0, 0)     # miss
             .build())
        p = CUProtocol(2, BlockMap(4), threshold=1)
        r = p.run(t)
        assert r.misses == 3
        assert r.counters.write_throughs == 0

    def test_large_threshold_acts_like_wu(self, producer_trace):
        wu = run_protocol("WU", producer_trace, 16)
        cu = CUProtocol(producer_trace.num_procs, BlockMap(16),
                        threshold=10_000).run(producer_trace)
        assert cu.misses == wu.misses

    def test_local_access_resets_counter(self):
        p = CUProtocol(2, BlockMap(4), threshold=2)
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0)    # 1 unused update
             .load(0, 0)     # reset
             .store(1, 0)    # 1 unused update again
             .load(0, 0)     # still cached: hit
             .build())
        r = p.run(t)
        assert r.misses == 2

    def test_unused_copy_dropped_after_threshold(self):
        p = CUProtocol(2, BlockMap(4), threshold=2)
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0).store(1, 0)   # two unused updates: drop P0's copy
             .load(0, 0)                # miss
             .build())
        r = p.run(t)
        assert r.misses == 3
        assert r.counters.invalidations_applied == 1
        # only the first update was actually transmitted
        assert r.counters.write_throughs == 1

    def test_default_threshold_between_wu_and_otf(self):
        t = read_mostly(4, words=8, rounds=30, writes_per_round=4, seed=3)
        res = run_protocols(t, 16, ["OTF", "CU", "WU"])
        assert res["WU"].misses <= res["CU"].misses <= res["OTF"].misses

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigError):
            CUProtocol(2, BlockMap(4), threshold=0)

    def test_abandoned_copy_stops_update_traffic(self):
        """A copy its holder stopped using should stop costing updates
        under the competitive rule (but keeps costing under pure WU)."""
        b = TraceBuilder(2).load(0, 0)
        for _ in range(50):
            b.store(1, 0)
        t = b.build()
        wu = run_protocol("WU", t, 16)
        cu = run_protocol("CU", t, 16)  # default threshold 4
        assert wu.counters.write_throughs == 50
        assert cu.counters.write_throughs == 3
        assert cu.counters.invalidations_applied == 1
