"""Telemetry layer suite: recorder, schema, fold, manifest, progress, report.

Pins the observability acceptance criteria:

* every record kind the layer emits (span / metric / event / log)
  validates against the checked-in ``telemetry.schema.json``, and the
  schema rejects unknown names, kinds and stray properties;
* worker records ship over the reply channel and merge into one stream
  with a single total ``seq`` order and preserved worker pids;
* the headline property: a recorded sweep's merged timeline contains
  **exactly one ok ``cell.run`` span per grid cell**, under sharding and
  under memory-pressure degradation alike;
* a sweep resumed from its checkpoint journal produces a manifest whose
  stable bytes (:func:`repro.obs.manifest_stable_bytes`) are identical
  to the run that computed every cell;
* supervisor retries and ladder degradations announce themselves as
  warning logs and ``task.failed`` telemetry events at the moment they
  happen;
* the footprint model's predicted-vs-observed ratio lands in the
  manifest, and ``repro report`` renders all of it.
"""

import io
import json
import logging
import os
import tempfile
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.engine import SweepEngine
from repro.errors import ReproError
from repro.obs import (
    NULL_RECORDER,
    ProgressLine,
    Recorder,
    RunTelemetry,
    TelemetryLogHandler,
    TelemetrySchemaError,
    current_run,
    find_runs,
    format_eta,
    format_rate,
    library_logger,
    load_manifest,
    manifest_stable_bytes,
    render_report,
    render_run,
    result_digest,
    slowest_spans,
    summarize_kinds,
    use_recorder,
    validate_manifest,
    validate_record,
    validate_stream,
)
from repro.runtime import FaultPlan, RetryPolicy, Supervisor
from repro.runtime.checkpoint import decode_result, encode_result
from repro.trace.trace import Trace
from repro.workloads.registry import make_workload

#: Block sizes of the recorded acceptance sweep (small but sharded).
SIZES = (32, 128)

#: Fast retry policy so failure scenarios stay sub-second.
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05)


@pytest.fixture(scope="module")
def trace():
    full = make_workload("MP3D200").generate()
    return Trace(full.events[:4000], full.num_procs, name="MP3D200",
                 copy=False)


def _read_records(run_dir):
    with open(os.path.join(run_dir, "events.jsonl"),
              encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


def _ok_cell_runs(records):
    """Parent grid cell -> count of ok ``cell.run`` spans."""
    counts = {}
    for r in records:
        if (r.get("kind") == "span" and r.get("name") == "cell.run"
                and r.get("status") == "ok"):
            cell = tuple(r["attrs"]["cell"][:3])
            counts[cell] = counts.get(cell, 0) + 1
    return counts


# ----------------------------------------------------------------------
# recorder unit behaviour
# ----------------------------------------------------------------------
class TestRecorder:
    def test_span_context_manager_times_and_validates(self):
        rec = Recorder.buffering()
        with rec.span("cell.run", cell=["classify", 32, "dubois"]) as sp:
            sp.set(rows=100)
        (record,) = rec.drain()
        assert record["kind"] == "span"
        assert record["status"] == "ok"
        assert record["dur_s"] >= 0
        assert record["attrs"]["rows"] == 100
        validate_record(record)

    def test_span_records_error_status_and_reraises(self):
        rec = Recorder.buffering()
        with pytest.raises(ValueError):
            with rec.span("cell.run", cell=["classify", 32, "dubois"]):
                raise ValueError("boom")
        (record,) = rec.drain()
        assert record["status"] == "error"
        validate_record(record)

    def test_seq_is_monotonic_and_common_fields_stamped(self):
        rec = Recorder.buffering()
        for i in range(5):
            rec.metric("cell.rows", i, cell=["classify", 32, "dubois"])
        records = rec.drain()
        assert [r["seq"] for r in records] == list(range(5))
        for r in records:
            assert r["v"] == 1 and r["pid"] == os.getpid() and r["t"] > 0

    def test_ingest_reassigns_seq_and_preserves_worker_pid(self):
        child = Recorder.buffering()
        child.event("task.done", cell=["classify", 32, "dubois"])
        shipped = child.drain()
        shipped[0]["pid"] = 99999  # as if from a forked worker
        parent = Recorder.buffering()
        parent.metric("cache.hit", 1)
        parent.ingest(shipped)
        first, second = parent.drain()
        assert [first["seq"], second["seq"]] == [0, 1]
        assert second["pid"] == 99999

    def test_null_recorder_is_inert(self):
        assert NULL_RECORDER.active is False
        with NULL_RECORDER.span("cell.run") as sp:
            sp.set(rows=1)
        NULL_RECORDER.metric("cell.rows", 1)
        NULL_RECORDER.event("task.done")
        assert NULL_RECORDER.drain() == []

    def test_use_recorder_scopes_and_restores(self):
        from repro.obs import get_recorder
        rec = Recorder.buffering()
        assert get_recorder() is NULL_RECORDER
        with use_recorder(rec):
            assert get_recorder() is rec
        assert get_recorder() is NULL_RECORDER

    def test_log_handler_bridges_stdlib_logging(self):
        rec = Recorder.buffering()
        handler = TelemetryLogHandler(rec)
        logger = library_logger()
        logger.addHandler(handler)
        try:
            logging.getLogger("repro.test_obs").warning("deg %s", "raded")
        finally:
            logger.removeHandler(handler)
        (record,) = rec.drain()
        assert record["kind"] == "log"
        assert record["level"] == "warning"
        assert record["message"] == "deg raded"
        validate_record(record)

    def test_writes_jsonl_file(self, tmp_path):
        path = str(tmp_path / "sub" / "events.jsonl")
        rec = Recorder(path)
        rec.event("run.start", run_id="r1")
        rec.close()
        assert validate_stream(path) == 1


# ----------------------------------------------------------------------
# the checked-in schema
# ----------------------------------------------------------------------
class TestSchema:
    def test_every_emitted_kind_validates(self):
        """One record per enumerated span/metric/event name, plus a log."""
        rec = Recorder.buffering()
        for name in ("sweep.run", "trace.generate", "cache.lookup",
                     "cell.run", "shard.run", "merge", "checkpoint.write"):
            rec.span_complete(name, 0.5, cell=["classify", 32, "dubois"])
        for name, unit in (("cache.hit", None), ("cache.miss", None),
                           ("cell.rows", None), ("cell.events_per_sec", None),
                           ("worker.ru_maxrss_kb", "kb"),
                           ("footprint.predicted_bytes", "bytes")):
            rec.metric(name, 42, unit=unit)
        for name in ("run.start", "run.finish", "sweep.start",
                     "sweep.finish", "rung.start", "task.assigned",
                     "task.done", "task.failed", "ladder.step",
                     "cell.resumed"):
            rec.event(name, level="warning" if name == "task.failed"
                      else "info")
        rec.log("info", "repro.analysis.engine", "hello")
        records = rec.drain()
        assert len(records) == 24
        for record in records:
            validate_record(record)

    @pytest.mark.parametrize("bad", [
        {"kind": "bogus", "name": "x", "v": 1, "t": 1.0, "pid": 1, "seq": 0},
        {"kind": "span", "name": "not.a.span", "dur_s": 1.0, "status": "ok",
         "attrs": {}, "v": 1, "t": 1.0, "pid": 1, "seq": 0},
        {"kind": "span", "name": "cell.run", "dur_s": 1.0, "status": "ok",
         "attrs": {}, "extra": True, "v": 1, "t": 1.0, "pid": 1, "seq": 0},
        {"kind": "event", "name": "task.failed", "level": "fatal",
         "attrs": {}, "v": 1, "t": 1.0, "pid": 1, "seq": 0},
        {"kind": "metric", "name": "cell.rows", "attrs": {},
         "v": 1, "t": 1.0, "pid": 1, "seq": 0},  # missing value
    ])
    def test_schema_rejects_malformed_records(self, bad):
        with pytest.raises(TelemetrySchemaError):
            validate_record(bad)

    def test_stream_validation_skips_torn_tail(self, tmp_path):
        rec = Recorder.buffering()
        rec.event("run.start", run_id="r1")
        rec.event("run.finish", run_id="r1", outcome="completed")
        path = tmp_path / "events.jsonl"
        lines = [json.dumps(r) for r in rec.drain()]
        path.write_text(lines[0] + "\n" + lines[1] + "\n"
                        + lines[1][: len(lines[1]) // 2])
        assert validate_stream(str(path)) == 2
        assert summarize_kinds(str(path)) == {"event": 2}


# ----------------------------------------------------------------------
# a recorded sweep, end to end
# ----------------------------------------------------------------------
class TestRecordedSweep:
    @pytest.fixture(scope="class")
    def run(self, trace, tmp_path_factory):
        """One sharded parallel sweep recorded under ``--telemetry``."""
        tel = str(tmp_path_factory.mktemp("tel"))
        engine = SweepEngine(trace, jobs=2, shards=2, telemetry_dir=tel)
        panel = engine.classify_sweep(SIZES)
        (run_dir,) = find_runs(tel)
        return {"panel": panel, "dir": run_dir,
                "records": _read_records(run_dir),
                "manifest": load_manifest(run_dir)}

    def test_stream_validates(self, run):
        assert validate_stream(
            os.path.join(run["dir"], "events.jsonl")) == len(run["records"])

    def test_exactly_one_cell_run_span_per_cell(self, run):
        expected = {("classify", bb, "dubois") for bb in SIZES}
        assert _ok_cell_runs(run["records"]) == {c: 1 for c in expected}

    def test_sharded_cells_carry_shard_spans_and_merge(self, run):
        kinds = {}
        for r in run["records"]:
            if r.get("kind") == "span":
                kinds[r["name"]] = kinds.get(r["name"], 0) + 1
        assert kinds.get("shard.run", 0) == 2 * len(SIZES)
        assert kinds.get("merge", 0) == len(SIZES)

    def test_manifest_validates_and_folds_cells(self, run):
        manifest = run["manifest"]
        validate_manifest(manifest)
        assert manifest["outcome"] == "completed"
        cells = {tuple(c["cell"]): c for c in manifest["cells"]}
        assert set(cells) == {("classify", bb, "dubois") for bb in SIZES}
        for entry in cells.values():
            assert entry["status"] == "done"
            assert entry["shards"] == 2
            assert entry["rows"] > 0
            assert entry["result_sha256"]
            assert entry["events_per_sec"] > 0

    def test_footprint_ratio_present_for_worker_cells(self, run):
        """Satellite: predicted-vs-actual footprint lands per cell."""
        ratios = [c["footprint_ratio"] for c in run["manifest"]["cells"]]
        assert all(r is not None and r > 0 for r in ratios)

    def test_worker_records_merged_with_worker_pids(self, run):
        parent = os.getpid()
        worker_pids = {r["pid"] for r in run["records"]
                       if r.get("kind") == "metric"
                       and r.get("name") == "worker.ru_maxrss_kb"}
        assert worker_pids and parent not in worker_pids
        seqs = [r["seq"] for r in run["records"]]
        assert seqs == list(range(len(seqs)))

    def test_report_renders_cells_and_spans(self, run):
        text = render_run(run["dir"])
        assert "classify/32/dubois" in text
        assert "footprint model" in text
        assert "top" in text and "slowest spans" in text
        spans = slowest_spans(os.path.join(run["dir"], "events.jsonl"),
                              top=3)
        assert len(spans) == 3
        assert spans[0]["dur_s"] >= spans[-1]["dur_s"]

    def test_render_report_walks_directory(self, run):
        out = io.StringIO()
        render_report(os.path.dirname(run["dir"]), stream=out)
        assert "classify/32/dubois" in out.getvalue()

    def test_render_report_rejects_empty_directory(self, tmp_path):
        with pytest.raises(ReproError):
            render_report(str(tmp_path), stream=io.StringIO())


# ----------------------------------------------------------------------
# kernel execution-path telemetry
# ----------------------------------------------------------------------
class TestKernelTelemetry:
    """The manifest and stream record which execution path each cell took.

    A mixed grid — two kernelled cells (dubois, OTF) and one without a
    kernel (the SD protocol) — must fold per-cell ``kernel`` values into
    the manifest and emit a schema-valid ``kernel.batch`` metric for
    exactly the vectorized cells.
    """

    CELLS = (("classify", 32, "dubois"), ("protocol", 32, "OTF"),
             ("protocol", 32, "SD"))

    @pytest.fixture(scope="class")
    def run(self, trace, tmp_path_factory):
        pytest.importorskip("numpy")
        tel = str(tmp_path_factory.mktemp("tel-kernel"))
        engine = SweepEngine(trace, telemetry_dir=tel)
        results = engine.run_grid(list(self.CELLS))
        (run_dir,) = find_runs(tel)
        return {"results": results, "dir": run_dir,
                "records": _read_records(run_dir),
                "manifest": load_manifest(run_dir)}

    def test_manifest_records_kernel_per_cell(self, run):
        validate_manifest(run["manifest"])
        kernels = {tuple(c["cell"]): c["kernel"]
                   for c in run["manifest"]["cells"]}
        assert kernels == {("classify", 32, "dubois"): "vectorized",
                           ("protocol", 32, "OTF"): "vectorized",
                           ("protocol", 32, "SD"): "interpreted"}

    def test_kernel_batch_metric_for_vectorized_cells_only(self, run):
        batches = {tuple(r["attrs"]["cell"]): r for r in run["records"]
                   if r.get("kind") == "metric"
                   and r.get("name") == "kernel.batch"}
        assert set(batches) == {("classify", 32, "dubois"),
                                ("protocol", 32, "OTF")}
        for rec in batches.values():
            assert rec["value"] >= 1
            assert rec["attrs"]["rows"] > 0
            assert rec["attrs"]["events_per_batch"] > 0
            validate_record(rec)

    def test_stream_validates(self, run):
        assert validate_stream(
            os.path.join(run["dir"], "events.jsonl")) == len(run["records"])

    def test_spans_carry_kernel_attr(self, run):
        spans = {tuple(r["attrs"]["cell"]): r["attrs"].get("kernel")
                 for r in run["records"]
                 if r.get("kind") == "span" and r.get("name") == "cell.run"}
        assert spans[("classify", 32, "dubois")] == "vectorized"
        assert spans[("protocol", 32, "SD")] == "interpreted"


# ----------------------------------------------------------------------
# the headline property, under sharding and degradation
# ----------------------------------------------------------------------
class TestOneSpanPerCellProperty:
    @settings(max_examples=6, deadline=None)
    @given(jobs=st.sampled_from([1, 2, 4]),
           shards=st.sampled_from([1, 2]),
           degrade=st.booleans())
    def test_exactly_one_ok_cell_run_span_per_grid_cell(
            self, trace, jobs, shards, degrade):
        """Whatever the execution shape — serial, parallel, sharded, or
        degraded rung by rung down to serial after every worker attempt
        OOMs — the merged timeline has exactly one ok ``cell.run`` span
        per grid cell, and the manifest marks every cell done."""
        plan = (FaultPlan(exhaust_memory={i: 99 for i in range(64)})
                if degrade and jobs > 1 else None)
        tel = tempfile.mkdtemp(prefix="repro-obs-prop-")
        engine = SweepEngine(trace, jobs=jobs, shards=shards,
                             retry=FAST_RETRY, fault_plan=plan,
                             telemetry_dir=tel)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            engine.classify_sweep(SIZES)
        (run_dir,) = find_runs(tel)
        records = _read_records(run_dir)
        expected = {("classify", bb, "dubois") for bb in SIZES}
        assert _ok_cell_runs(records) == {c: 1 for c in expected}
        manifest = load_manifest(run_dir)
        validate_manifest(manifest)
        statuses = {tuple(c["cell"]): c["status"]
                    for c in manifest["cells"]}
        assert statuses == {c: "done" for c in expected}
        if plan is not None:
            assert manifest["counters"]["ladder_steps"] >= 1
            assert manifest["counters"]["oom_failures"] >= 1


# ----------------------------------------------------------------------
# resume byte-stability
# ----------------------------------------------------------------------
class TestResumeStability:
    def test_resumed_manifest_has_identical_stable_bytes(self, trace,
                                                         tmp_path):
        ckpt = str(tmp_path / "ckpt")
        fresh_tel = str(tmp_path / "tel-fresh")
        resumed_tel = str(tmp_path / "tel-resumed")

        fresh = SweepEngine(trace, checkpoint_dir=ckpt,
                            telemetry_dir=fresh_tel)
        panel_fresh = fresh.classify_sweep(SIZES)
        resumed = SweepEngine(trace, checkpoint_dir=ckpt,
                              telemetry_dir=resumed_tel)
        panel_resumed = resumed.classify_sweep(SIZES)
        assert panel_resumed == panel_fresh

        (fresh_run,) = find_runs(fresh_tel)
        (resumed_run,) = find_runs(resumed_tel)
        m_fresh = load_manifest(fresh_run)
        m_resumed = load_manifest(resumed_run)
        # Every cell came from the journal, none recomputed...
        assert {c["status"] for c in m_resumed["cells"]} == {"resumed"}
        assert m_resumed["counters"]["tasks_done"] == 0
        # ...and the stable view cannot tell the runs apart.
        assert (manifest_stable_bytes(m_fresh)
                == manifest_stable_bytes(m_resumed))
        # The volatile view *can* (distinct run ids), so the stability is
        # a property of the projection, not an accident of equality.
        assert m_fresh["run_id"] != m_resumed["run_id"]

    def test_result_digest_survives_journal_round_trip(self, trace):
        result = SweepEngine(trace).classify_sweep((64,)).breakdowns[0]
        decoded = decode_result(encode_result(result))
        assert result_digest(decoded) == result_digest(result)

    def test_result_digest_falls_back_for_plain_payloads(self):
        assert result_digest({"b": 2, "a": 1}) == result_digest(
            {"a": 1, "b": 2})


# ----------------------------------------------------------------------
# failures announce themselves when they happen
# ----------------------------------------------------------------------
class TestFailureTelemetry:
    def test_worker_oom_retry_emits_event_and_warning_log(self, caplog):
        plan = FaultPlan(exhaust_memory={1: 1})  # task 1, first attempt
        rec = Recorder.buffering()
        with use_recorder(rec):
            with caplog.at_level(logging.WARNING, logger="repro"):
                sup = Supervisor(lambda t: t * 2, jobs=2, retry=FAST_RETRY,
                                 fault_plan=plan)
                assert sup.run(["a", "b", "c"]) == ["aa", "bb", "cc"]
        failed = [r for r in rec.drain()
                  if r.get("kind") == "event"
                  and r.get("name") == "task.failed"]
        assert len(failed) == 1
        assert failed[0]["level"] == "warning"
        assert failed[0]["attrs"]["fail_kind"] == "oom"
        assert failed[0]["attrs"]["action"] == "retry"
        assert any("retrying after backoff" in r.message
                   for r in caplog.records)

    def test_degraded_sweep_logs_ladder_step(self, trace, caplog):
        plan = FaultPlan(exhaust_memory={i: 99 for i in range(64)})
        engine = SweepEngine(trace, jobs=4, retry=FAST_RETRY,
                             fault_plan=plan)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with caplog.at_level(logging.WARNING, logger="repro"):
                engine.classify_sweep((64,))
        assert any("OOM-class failure" in r.message
                   for r in caplog.records)


# ----------------------------------------------------------------------
# live progress line
# ----------------------------------------------------------------------
class TestProgress:
    @staticmethod
    def _feed(progress):
        progress({"kind": "event", "name": "rung.start",
                  "attrs": {"tasks": 2}})
        for _ in range(2):
            progress({"kind": "event", "name": "task.assigned",
                      "attrs": {}})
            progress({"kind": "span", "name": "cell.run", "status": "ok",
                      "dur_s": 0.5, "attrs": {"rows": 500_000}})
            progress({"kind": "event", "name": "task.done", "attrs": {}})

    def test_non_tty_prints_full_lines_and_final_summary(self):
        out = io.StringIO()
        progress = ProgressLine(out, non_tty_interval=0.0)
        self._feed(progress)
        progress.finish()
        lines = out.getvalue().splitlines()
        assert lines[-1] == "[repro] 2/2 tasks · 0 running · 0 failed · "\
                            "1.0M ev/s"
        assert all(line.startswith("[repro] ") for line in lines)
        assert "\r" not in out.getvalue()

    def test_non_tty_throttles_intermediate_lines(self):
        out = io.StringIO()
        progress = ProgressLine(out, non_tty_interval=3600.0)
        self._feed(progress)
        progress.finish()
        # One throttled line at most, plus the guaranteed final summary.
        assert 1 <= len(out.getvalue().splitlines()) <= 2

    def test_eta_appears_while_tasks_remain(self):
        out = io.StringIO()
        progress = ProgressLine(out, non_tty_interval=0.0)
        progress({"kind": "event", "name": "rung.start",
                  "attrs": {"tasks": 4}})
        progress({"kind": "span", "name": "cell.run", "status": "ok",
                  "dur_s": 2.0, "attrs": {"rows": 100}})
        assert "ETA" in progress.status()

    def test_rate_and_eta_formatting(self):
        assert format_rate(1_234_567) == "1.2M ev/s"
        assert format_rate(875_000) == "875k ev/s"
        assert format_rate(12) == "12 ev/s"
        assert format_eta(34) == "34s"
        assert format_eta(154) == "2m34s"
        assert format_eta(7260) == "2h01m"


# ----------------------------------------------------------------------
# the CLI surface
# ----------------------------------------------------------------------
class TestCliTelemetry:
    def test_sweep_records_command_scoped_run(self, tmp_path, capsys):
        from repro.cli import main
        tel = str(tmp_path / "tel")
        assert main(["sweep", "MATMUL24", "--telemetry", tel]) == 0
        err = capsys.readouterr().err
        assert "[repro]" in err  # non-tty progress smoke
        (run_dir,) = find_runs(tel)
        manifest = load_manifest(run_dir)
        validate_manifest(manifest)
        assert manifest["argv"][:2] == ["sweep", "MATMUL24"]
        assert manifest["config"]["command"] == "sweep"
        assert validate_stream(os.path.join(run_dir, "events.jsonl")) > 0
        assert current_run() is None  # torn down after the command

    def test_quiet_flag_suppresses_progress(self, tmp_path, capsys):
        from repro.cli import main
        tel = str(tmp_path / "tel")
        assert main(["-q", "sweep", "MATMUL24", "--telemetry", tel]) == 0
        assert "[repro]" not in capsys.readouterr().err

    def test_report_command_renders_recorded_run(self, tmp_path, capsys):
        from repro.cli import main
        tel = str(tmp_path / "tel")
        assert main(["-q", "sweep", "MATMUL24", "--telemetry", tel]) == 0
        capsys.readouterr()
        assert main(["report", tel]) == 0
        out = capsys.readouterr().out
        assert "classify/32/dubois" in out
        assert "slowest spans" in out

    def test_report_command_errors_cleanly_without_runs(self, tmp_path,
                                                        capsys):
        from repro.cli import main
        assert main(["report", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# run lifecycle details
# ----------------------------------------------------------------------
class TestRunTelemetry:
    def test_failed_run_writes_failed_manifest(self, tmp_path):
        with pytest.raises(RuntimeError):
            with RunTelemetry(str(tmp_path)) as run:
                run.recorder.event("sweep.start", trace="X",
                                   trace_key="k1", num_procs=1, events=10,
                                   cells=1, jobs=1)
                raise RuntimeError("boom")
        manifest = load_manifest(run.directory)
        validate_manifest(manifest)
        assert manifest["outcome"] == "failed"
        assert "RuntimeError: boom" in manifest["error"]

    def test_finish_is_idempotent(self, tmp_path):
        run = RunTelemetry(str(tmp_path))
        run.__enter__()
        run.finish()
        run.finish()
        assert load_manifest(run.directory)["outcome"] == "completed"
        assert current_run() is None

    def test_nested_runs_do_not_fight(self, tmp_path, trace):
        """An engine joins an already-active run instead of nesting."""
        tel = str(tmp_path / "outer")
        with RunTelemetry(tel) as outer:
            engine = SweepEngine(trace, telemetry_dir=str(tmp_path / "in"))
            engine.classify_sweep((64,))
            assert current_run() is outer
        assert not os.path.exists(str(tmp_path / "in"))
        manifest = load_manifest(outer.directory)
        assert [tuple(c["cell"]) for c in manifest["cells"]] == [
            ("classify", 64, "dubois")]
