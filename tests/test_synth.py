"""Unit tests for synthetic trace generators, checking their analytically

known classification results."""

import pytest

from repro.classify import DuboisClassifier
from repro.errors import ConfigError
from repro.mem import BlockMap
from repro.trace import synth


class TestPrivateBlocks:
    def test_only_cold_misses(self):
        t = synth.private_blocks(4, words_per_proc=8, iterations=3)
        bd = DuboisClassifier.classify_trace(t, BlockMap(4))
        assert bd.total == bd.pc == 4 * 8
        assert bd.pts == bd.pfs == bd.cts == bd.cfs == 0

    def test_cold_misses_shrink_with_block_size(self):
        t = synth.private_blocks(2, words_per_proc=8, iterations=1)
        bd = DuboisClassifier.classify_trace(t, BlockMap(16))
        assert bd.pc == 2 * 2  # 8 words -> 2 blocks of 4 words each


class TestProducerConsumer:
    def test_pure_true_sharing(self):
        t = synth.producer_consumer(3, words=8, rounds=4)
        bd = DuboisClassifier.classify_trace(t, BlockMap(16))
        assert bd.pfs == 0, "consumers read every word: no false sharing"
        assert bd.pts > 0

    def test_needs_two_procs(self):
        with pytest.raises(ConfigError):
            synth.producer_consumer(1, words=4, rounds=1)

    def test_miss_count_formula(self):
        # 2 blocks of 4 words; each of 2 consumers misses each block each
        # round (cold in round 0); producer misses each block each round
        # after round 0 (consumers' loads don't invalidate, but its own
        # re-writes find the block still owned... producer keeps copy).
        t = synth.producer_consumer(3, words=8, rounds=3)
        bd = DuboisClassifier.classify_trace(t, BlockMap(16))
        # producer: 2 cold; consumers: 2 each cold + 2 each per later round
        assert bd.cold == 6
        assert bd.pts == 2 * 2 * 2


class TestFalseSharingPingpong:
    def test_all_coherence_misses_useless(self, pingpong_trace):
        bd = DuboisClassifier.classify_trace(pingpong_trace, BlockMap(16))
        assert bd.pts == 0
        assert bd.pfs > 0
        assert bd.essential == bd.cold

    def test_no_sharing_at_word_blocks(self, pingpong_trace):
        bd = DuboisClassifier.classify_trace(pingpong_trace, BlockMap(4))
        assert bd.pfs == 0
        assert bd.total == bd.cold


class TestMigratory:
    def test_handoff_misses(self, migratory_trace):
        bd = DuboisClassifier.classify_trace(migratory_trace, BlockMap(32))
        assert bd.pfs == 0, "whole record read+written by each visitor"
        assert bd.pts > 0


class TestUniformRandom:
    def test_deterministic(self):
        a = synth.uniform_random(4, 64, 500, seed=9)
        b = synth.uniform_random(4, 64, 500, seed=9)
        assert a.events == b.events

    def test_store_fraction_zero_is_read_only(self):
        t = synth.uniform_random(4, 64, 500, store_fraction=0.0, seed=1)
        assert all(op == 0 for _, op, _ in t.events)
        bd = DuboisClassifier.classify_trace(t, BlockMap(64))
        assert bd.total == bd.pc

    def test_bad_store_fraction(self):
        with pytest.raises(ConfigError):
            synth.uniform_random(2, 8, 10, store_fraction=1.5)


class TestReadMostly:
    def test_updates_cause_pts_bursts(self):
        t = synth.read_mostly(4, words=8, rounds=6, writes_per_round=1, seed=2)
        bd = DuboisClassifier.classify_trace(t, BlockMap(4))
        assert bd.pts > 0
        assert bd.pfs == 0  # B=4: no false sharing possible


class TestValidation:
    @pytest.mark.parametrize("fn,args", [
        (synth.private_blocks, (0, 1, 1)),
        (synth.private_blocks, (1, 0, 1)),
        (synth.producer_consumer, (2, 0, 1)),
        (synth.migratory, (2, 1, 0)),
        (synth.uniform_random, (2, 8, 0)),
        (synth.read_mostly, (2, 8, 0)),
    ])
    def test_nonpositive_params_rejected(self, fn, args):
        with pytest.raises(ConfigError):
            fn(*args)
