"""Unit tests for benchmark statistics (Table 2 machinery)."""

import pytest

from repro.trace import TraceBuilder
from repro.trace.stats import BenchmarkStats, benchmark_stats
from repro.trace.trace import Trace


class TestBenchmarkStats:
    def test_counts_from_trace(self):
        t = (TraceBuilder(2)
             .load(0, 0).load(0, 1).store(1, 2)
             .acquire(0, 9).release(0, 9)
             .build("demo"))
        st = benchmark_stats(t)
        assert st.reads == 2 and st.writes == 1
        assert st.acquires == 1 and st.releases == 1
        assert st.acq_rel == 2
        assert st.data_refs == 3
        assert st.name == "demo"

    def test_speedup_from_cycles(self):
        # 8 events executed in 4 cycles on 2 processors: speedup 2.
        t = Trace([(p, 0, w) for w in range(4) for p in (0, 1)], 2,
                  meta={"cycles": 4}, validate=False)
        st = benchmark_stats(t)
        assert st.speedup == pytest.approx(2.0)

    def test_speedup_none_without_cycles(self):
        t = TraceBuilder(1).load(0, 0).build()
        assert benchmark_stats(t).speedup is None

    def test_data_set_bytes_from_meta(self):
        t = Trace([(0, 0, 0)], 1, meta={"data_set_bytes": 2048},
                  validate=False)
        st = benchmark_stats(t)
        assert st.data_set_bytes == 2048
        assert st.data_set_kb == pytest.approx(2.0)

    def test_data_set_none_without_meta(self):
        t = TraceBuilder(1).load(0, 0).build()
        st = benchmark_stats(t)
        assert st.data_set_bytes is None
        assert st.data_set_kb is None

    def test_as_row_formats_paper_columns(self):
        st = BenchmarkStats(name="X", num_procs=16, reads=43200,
                            writes=21856, acquires=256, releases=256,
                            data_set_bytes=8 * 1024, speedup=9.03)
        row = st.as_row()
        assert row["BENCHMARK"] == "X"
        assert row["SPEEDUP"] == "9.0"
        assert row["WRITES (000's)"] == "21.9"
        assert row["READS (000's)"] == "43.2"
        assert row["ACQ/REL (000's)"] == "0.5"
        assert row["DATA SET (KB)"] == "8"

    def test_as_row_handles_unknowns(self):
        st = BenchmarkStats(name="X", num_procs=1, reads=0, writes=0,
                            acquires=0, releases=0, data_set_bytes=None,
                            speedup=None)
        row = st.as_row()
        assert row["SPEEDUP"] == "-"
        assert row["DATA SET (KB)"] == "-"

    def test_speedup_counts_sync_events_as_work(self):
        # 2 data + 2 sync events on one processor in 4 cycles: speedup 1.
        t = (TraceBuilder(1).load(0, 0).acquire(0, 9).release(0, 9)
             .load(0, 1).build())
        t.meta["cycles"] = 4
        assert benchmark_stats(t).speedup == pytest.approx(1.0)
