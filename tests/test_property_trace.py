"""Property-based tests for trace infrastructure (I/O, interleaving,

race detection)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.trace.events import ACQUIRE, LOAD, RELEASE, STORE
from repro.trace.interleave import random_interleave, reinterleave
from repro.trace.io import dumps_text, loads_text
from repro.trace.trace import Trace
from repro.trace.validate import check_races


@st.composite
def traces(draw, max_events=40):
    n = draw(st.integers(0, max_events))
    nproc = draw(st.integers(1, 4))
    events = [
        (draw(st.integers(0, nproc - 1)),
         draw(st.sampled_from((LOAD, STORE, ACQUIRE, RELEASE))),
         draw(st.integers(0, 31)))
        for _ in range(n)
    ]
    return Trace(events, nproc, name=draw(st.sampled_from(("", "t", "x-1"))),
                 validate=False)


@given(traces())
@settings(max_examples=120, deadline=None)
def test_text_roundtrip(trace):
    assert loads_text(dumps_text(trace)) == trace


@given(traces(), st.integers(0, 2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_reinterleave_preserves_streams(trace, seed):
    out = reinterleave(trace, seed=seed)
    assert out.per_processor() == trace.per_processor()
    assert len(out) == len(trace)


@given(traces())
@settings(max_examples=80, deadline=None)
def test_counts_sum_to_length(trace):
    c = trace.counts()
    assert c.total == len(trace)
    assert c.data + c.acquires + c.releases == len(trace)


@given(traces())
@settings(max_examples=80, deadline=None)
def test_per_processor_partition(trace):
    streams = trace.per_processor()
    assert sum(len(s) for s in streams.values()) == len(trace)
    for p, stream in streams.items():
        assert all(ev[0] == p for ev in stream)


@given(traces())
@settings(max_examples=60, deadline=None)
def test_race_checker_is_deterministic_and_bounded(trace):
    r1 = check_races(trace)
    r2 = check_races(trace)
    assert r1.is_race_free == r2.is_race_free
    assert len(r1.races) == len(r2.races) <= 16


@given(traces())
@settings(max_examples=60, deadline=None)
def test_single_processor_traces_are_race_free(trace):
    events = [(0, op, addr) for _, op, addr in trace.events]
    single = Trace(events, 1, validate=False)
    assert check_races(single).is_race_free


@given(traces())
@settings(max_examples=60, deadline=None)
def test_read_only_traces_are_race_free(trace):
    events = [(p, LOAD, a) for p, op, a in trace.events]
    loads_only = Trace(events, trace.num_procs, validate=False)
    assert check_races(loads_only).is_race_free


@given(traces(), st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_sample_is_subsequence(trace, tenth):
    fraction = tenth / 10.0
    sampled = trace.sample(fraction, granularity=8)
    it = iter(trace.events)
    for ev in sampled.events:
        for candidate in it:
            if candidate == ev:
                break
        else:
            raise AssertionError("sampled event not in order in original")
