"""Unit tests for the MAX worst-case invalidation schedule."""

import pytest

from repro.protocols import run_protocol, run_protocols
from repro.trace import TraceBuilder
from repro.trace.synth import (
    false_sharing_pingpong,
    migratory,
    producer_consumer,
    uniform_random,
)


class TestWindows:
    def test_invalidation_delayed_to_kill_later_copy(self):
        """A store's invalidation may be performed any time before the
        storer's next release — including after the victim refetches."""
        t = (TraceBuilder(2)
             .load(0, 0)       # P0 caches
             .store(1, 0)      # window open until P1's release
             .load(0, 0)       # adversary kills P0's copy: miss
             .load(0, 0)       # the same store cannot kill twice
             .release(1, 100)
             .load(0, 0)       # window closed: hit
             .build())
        r = run_protocol("MAX", t, 4)
        assert r.misses == 3

    def test_two_stores_kill_twice(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0).store(1, 0)
             .load(0, 0)      # kill 1
             .load(0, 0)      # kill 2 (second store's invalidation saved)
             .load(0, 0)      # out of ammunition: hit
             .build())
        r = run_protocol("MAX", t, 4)
        assert r.misses == 4

    def test_release_bounds_the_window(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0)
             .release(1, 100)   # the invalidation must land by here
             .load(0, 0)        # forced kill happened: miss
             .load(0, 0)        # hit
             .build())
        r = run_protocol("MAX", t, 4)
        assert r.misses == 3

    def test_invalidation_targets_every_holder(self):
        t = (TraceBuilder(3)
             .load(0, 0).load(2, 0)
             .store(1, 0)
             .load(0, 0).load(2, 0)
             .build())
        r = run_protocol("MAX", t, 4)
        assert r.misses == 5  # one kill per holder from a single store

    def test_own_store_does_not_kill_self(self):
        t = TraceBuilder(1).load(0, 0).store(0, 0).load(0, 0).build()
        r = run_protocol("MAX", t, 4)
        assert r.misses == 1


class TestDominance:
    @pytest.mark.parametrize("make_trace", [
        lambda: false_sharing_pingpong(4, rounds=30),
        lambda: migratory(4, words=8, rounds=25),
        lambda: producer_consumer(4, words=12, rounds=6),
        lambda: uniform_random(6, words=64, num_events=4000, seed=5),
    ])
    @pytest.mark.parametrize("block_bytes", [4, 16, 64])
    def test_max_at_least_otf(self, make_trace, block_bytes):
        t = make_trace()
        res = run_protocols(t, block_bytes, ["OTF", "MAX"])
        assert res["MAX"].misses >= res["OTF"].misses

    def test_max_exploits_large_blocks(self, pingpong_trace):
        """Ping-pong amplification: MAX nearly doubles OTF on write-shared
        blocks because each store's invalidation lands just before the
        owner's own next access."""
        res = run_protocols(pingpong_trace, 16, ["OTF", "MAX"])
        assert res["MAX"].misses > 1.5 * res["OTF"].misses


class TestAccounting:
    def test_invalidations_spent_counted(self):
        t = (TraceBuilder(2)
             .load(0, 0).store(1, 0).load(0, 0).build())
        r = run_protocol("MAX", t, 4)
        assert r.counters.invalidations_sent == 1

    def test_token_groups_merge_same_deadline(self):
        # many stores in one window: miss count still bounded by accesses
        b = TraceBuilder(2).load(0, 0)
        for _ in range(100):
            b.store(1, 0)
        for _ in range(5):
            b.load(0, 0)
        r = run_protocol("MAX", b.build(), 4)
        assert r.misses == 1 + 1 + 5  # both colds + every P0 reload killed
