"""Unit tests for the workload registry and suites."""

import pytest

from repro.errors import ConfigError
from repro.workloads import (
    LARGE_SUITE,
    NAMED_CONFIGS,
    PAPER_LARGE_SUITE,
    SMALL_SUITE,
    make_workload,
    suite,
)
from repro.workloads.base import Workload, split_round_robin


class TestNamedConfigs:
    def test_small_suite_is_the_paper_lineup(self):
        assert SMALL_SUITE == ("LU32", "MP3D200", "WATER16", "JACOBI64")

    def test_every_name_instantiable(self):
        for name in NAMED_CONFIGS:
            wl = make_workload(name)
            assert isinstance(wl, Workload)
            assert wl.num_procs == 16

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            make_workload("LU9999")

    def test_factories_return_fresh_instances(self):
        assert make_workload("LU32") is not make_workload("LU32")

    def test_paper_large_names_present(self):
        assert set(PAPER_LARGE_SUITE) <= set(NAMED_CONFIGS)
        assert set(LARGE_SUITE) <= set(NAMED_CONFIGS)


class TestSuites:
    def test_small_suite_builds(self):
        wls = suite("small")
        assert [w.label for w in wls] == ["LU32", "MP3D200", "WATER16",
                                          "JACOBI64"]

    def test_large_suite_builds(self):
        assert len(suite("large")) == 3

    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigError):
            suite("giant")


class TestSplitRoundRobin:
    def test_interleaving(self):
        assert list(split_round_robin(10, 4, 1)) == [1, 5, 9]

    def test_partition_is_complete_and_disjoint(self):
        owned = [set(split_round_robin(13, 4, p)) for p in range(4)]
        union = set().union(*owned)
        assert union == set(range(13))
        assert sum(len(s) for s in owned) == 13

    def test_adjacent_items_differ_in_owner(self):
        """The property the paper's false sharing relies on."""
        owners = {}
        for p in range(4):
            for i in split_round_robin(12, 4, p):
                owners[i] = p
        assert all(owners[i] != owners[i + 1] for i in range(11))


class TestWorkloadBase:
    def test_describe_config_excludes_private(self):
        wl = make_workload("LU32")
        cfg = wl.describe_config()
        assert "n" in cfg and "num_procs" in cfg
        assert not any(k.startswith("_") for k in cfg)

    def test_nonpositive_procs_rejected(self):
        from repro.workloads import LU
        with pytest.raises(ConfigError):
            LU(8, num_procs=0)
