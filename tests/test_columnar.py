"""Unit tests for the columnar trace core and the dual-representation Trace."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.mem.addresses import BlockMap
from repro.trace import Trace, TraceBuilder
from repro.trace.columnar import COLUMN_DTYPE, TraceColumns
from repro.trace.events import ACQUIRE, LOAD, RELEASE, STORE

EVENTS = [
    (0, STORE, 0x10),
    (1, LOAD, 0x10),
    (2, ACQUIRE, 0x100),
    (2, STORE, 0x11),
    (2, RELEASE, 0x100),
    (0, LOAD, 0x45),
]


@pytest.fixture
def cols():
    return TraceColumns.from_events(EVENTS)


class TestTraceColumns:
    def test_roundtrip(self, cols):
        assert cols.to_events() == EVENTS

    def test_len_iter_getitem(self, cols):
        assert len(cols) == len(EVENTS)
        assert list(cols) == EVENTS
        assert cols[3] == (2, STORE, 0x11)
        assert cols[1:4].to_events() == EVENTS[1:4]

    def test_empty(self):
        empty = TraceColumns.from_events([])
        assert len(empty) == 0
        assert empty.to_events() == []
        assert empty.infer_num_procs() == 1
        empty.validate(1)  # no-op, must not raise

    def test_dtype(self, cols):
        assert cols.proc.dtype == COLUMN_DTYPE
        assert cols.op.dtype == COLUMN_DTYPE
        assert cols.addr.dtype == COLUMN_DTYPE

    def test_int64_arrays_adopted_by_reference(self):
        proc = np.zeros(3, dtype=np.int64)
        op = np.zeros(3, dtype=np.int64)
        addr = np.arange(3, dtype=np.int64)
        c = TraceColumns(proc, op, addr)
        assert c.proc is proc and c.op is op and c.addr is addr

    def test_other_dtypes_converted(self):
        c = TraceColumns(np.zeros(2, dtype=np.int32), [0, 1], [4, 8])
        assert c.proc.dtype == COLUMN_DTYPE
        assert c.to_events() == [(0, 0, 4), (0, 1, 8)]

    def test_unequal_lengths_rejected(self):
        with pytest.raises(TraceError):
            TraceColumns([0], [0, 0], [0])

    def test_non_1d_rejected(self):
        with pytest.raises(TraceError):
            TraceColumns(np.zeros((2, 2)), np.zeros(2), np.zeros(2))

    def test_validate_catches_bad_proc(self, cols):
        with pytest.raises(TraceError):
            cols.validate(2)  # trace uses processor 2

    def test_validate_catches_bad_opcode(self):
        with pytest.raises(TraceError):
            TraceColumns([0], [9], [0]).validate(1)

    def test_validate_catches_negative_addr(self):
        with pytest.raises(TraceError):
            TraceColumns([0], [LOAD], [-4]).validate(1)

    def test_infer_num_procs(self, cols):
        assert cols.infer_num_procs() == 3

    def test_eq(self, cols):
        assert cols == TraceColumns.from_events(EVENTS)
        assert cols != TraceColumns.from_events(EVENTS[:-1])

    def test_take_and_concat(self, cols):
        taken = cols.take(np.array([0, 5]))
        assert taken.to_events() == [EVENTS[0], EVENTS[5]]
        joined = taken.concat(taken)
        assert joined.to_events() == [EVENTS[0], EVENTS[5]] * 2


class TestDerivedColumns:
    def test_op_counts(self, cols):
        counts = cols.op_counts()
        assert counts[LOAD] == 2 and counts[STORE] == 2
        assert counts[ACQUIRE] == 1 and counts[RELEASE] == 1

    def test_data_mask_and_indices(self, cols):
        assert cols.data_mask().tolist() == [True, True, False, True,
                                             False, True]
        assert cols.data_indices().tolist() == [0, 1, 3, 5]

    def test_data_only(self, cols):
        data = cols.data_only()
        assert data.to_events() == [ev for ev in EVENTS
                                    if ev[1] in (LOAD, STORE)]

    def test_sync_indices(self, cols):
        sync = cols.sync_indices()
        assert sync[ACQUIRE].tolist() == [2]
        assert sync[RELEASE].tolist() == [4]

    def test_block_ids_match_block_map(self, cols):
        for bb in (4, 64, 1024):
            bm = BlockMap(bb)
            expected = [bm.block_of(a) for _, _, a in EVENTS]
            assert cols.block_ids(bm.offset_bits).tolist() == expected

    def test_word_offsets(self, cols):
        bm = BlockMap(64)
        wpb = bm.words_per_block
        expected = [a % wpb for _, _, a in EVENTS]
        assert cols.word_offsets(wpb).tolist() == expected

    def test_per_processor_indices(self, cols):
        segs = cols.per_processor_indices(3)
        assert [s.tolist() for s in segs] == [[0, 5], [1], [2, 3, 4]]

    def test_touched_words(self, cols):
        assert cols.touched_words().tolist() == [0x10, 0x11, 0x45]


class TestDualRepresentationTrace:
    def test_tuple_trace_grows_columns_lazily(self):
        t = Trace(EVENTS, 3)
        assert not t.has_columns
        assert t.columns().to_events() == EVENTS
        assert t.has_columns
        assert t.columns() is t.columns()  # cached

    def test_columnar_trace_materializes_events_lazily(self):
        t = Trace.from_columns(TraceColumns.from_events(EVENTS), 3)
        assert t.has_columns
        assert t.events == EVENTS
        assert t.events is t.events  # cached

    def test_columnar_trace_infers_num_procs(self):
        t = Trace.from_columns(TraceColumns.from_events(EVENTS))
        assert t.num_procs == 3

    def test_columnar_validation(self):
        with pytest.raises(TraceError):
            Trace.from_columns(TraceColumns.from_events(EVENTS), 2)

    def test_equality_across_representations(self):
        tuple_trace = Trace(EVENTS, 3)
        col_trace = Trace.from_columns(TraceColumns.from_events(EVENTS), 3)
        assert tuple_trace == col_trace
        assert col_trace == tuple_trace

    def test_sequence_protocol_on_columnar_trace(self):
        t = Trace.from_columns(TraceColumns.from_events(EVENTS), 3)
        assert len(t) == len(EVENTS)
        assert t[3] == EVENTS[3]
        assert list(t) == EVENTS

    def test_columnar_slicing_stays_columnar(self):
        t = Trace.from_columns(TraceColumns.from_events(EVENTS), 3)
        head = t[:4]
        assert head.has_columns
        assert head.events == EVENTS[:4]

    def test_columnar_concat(self):
        t = Trace.from_columns(TraceColumns.from_events(EVENTS), 3)
        joined = t.concat(t)
        assert joined.has_columns
        assert joined.events == EVENTS * 2

    def test_counts_agree_across_representations(self):
        tuple_trace = Trace(EVENTS, 3)
        col_trace = Trace.from_columns(TraceColumns.from_events(EVENTS), 3)
        assert tuple_trace.counts() == col_trace.counts()

    def test_touched_sets_agree_across_representations(self):
        tuple_trace = Trace(EVENTS, 3)
        col_trace = Trace.from_columns(TraceColumns.from_events(EVENTS), 3)
        assert tuple_trace.touched_words() == col_trace.touched_words()
        bm = BlockMap(64)
        assert (tuple_trace.touched_blocks(bm)
                == col_trace.touched_blocks(bm))

    def test_copy_false_adopts_list(self):
        events = list(EVENTS)
        t = Trace(events, 3, copy=False)
        assert t.events is events

    def test_copy_true_defends_against_mutation(self):
        events = list(EVENTS)
        t = Trace(events, 3)
        events.append((0, LOAD, 0))
        assert len(t) == len(EVENTS)

    def test_builder_produces_column_ready_trace(self):
        t = (TraceBuilder(2).store(0, 0x10).load(1, 0x10).build("b"))
        assert t.columns().to_events() == [(0, STORE, 0x10), (1, LOAD, 0x10)]
