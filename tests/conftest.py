"""Shared fixtures: small deterministic traces and scaled-down workloads.

Workload fixtures are session-scoped (generation is the expensive part) and
deliberately smaller than the benchmark configurations — unit tests need
structure, not scale.
"""

from __future__ import annotations

import pytest

from repro.trace import TraceBuilder
from repro.trace.synth import (
    false_sharing_pingpong,
    migratory,
    producer_consumer,
    uniform_random,
)
from repro.workloads import FFT, Jacobi, LU, MP3D, MatMul, Water


# ----------------------------------------------------------------------
# the paper's hand traces (Figures 1-4)
# ----------------------------------------------------------------------
@pytest.fixture
def fig1_trace():
    """Figure 1: words 0 and 1 share a two-word block."""
    return (TraceBuilder(2)
            .store(0, 0)   # T0: P1 Store 0
            .load(1, 0)    # T1: P2 Load 0  (INV of nothing; CTS)
            .store(0, 1)   # T2: P1 Store 1
            .load(1, 1)    # T3: P2 Load 1
            .build("fig1"))


@pytest.fixture
def fig2_traces():
    """Figure 2: two equivalent interleavings with different essential counts."""
    eager = (TraceBuilder(2)
             .store(0, 0).store(0, 1).load(1, 0).load(1, 1).build("fig2-eager"))
    delayed = (TraceBuilder(2)
               .store(0, 0).load(1, 0).store(0, 1).load(1, 1).build("fig2-delayed"))
    return eager, delayed


@pytest.fixture
def fig3_trace():
    """Figure 3: the CFS example; T5 is PTS for us, FSM for Eggers/Torrellas."""
    return (TraceBuilder(2)
            .store(0, 1)   # T0: P1 Store 1 -> PC
            .load(1, 0)    # T1: P2 Load 0 -> CM/CM/CFS
            .load(0, 1)    # T2: P1 Load 1 (hit)
            .load(0, 0)    # T3: P1 Load 0 (hit)
            .store(1, 0)   # T4: P2 Store 0 (INV P1)
            .load(0, 1)    # T5: P1 Load 1 -> FSM/FSM/PTS
            .load(0, 0)    # T6: P1 Load 0 (hit)
            .build("fig3"))


@pytest.fixture
def fig4_trace():
    """Figure 4: Eggers vs Torrellas differences."""
    return (TraceBuilder(2)
            .load(0, 1)    # T0: P1 Load 1 -> CM/CM/PC
            .load(1, 0)    # T1: P2 Load 0 -> CM/CM/PC
            .store(1, 1)   # T2: P2 Store 1 (INV P1)
            .load(0, 0)    # T3: P1 Load 0 -> CM/FSM/PFS
            .store(1, 0)   # T4: P2 Store 0 (INV P1)
            .load(0, 1)    # T5: P1 Load 1 -> TSM/FSM/PTS
            .load(0, 0)    # T6: P1 Load 0 (hit)
            .build("fig4"))


# ----------------------------------------------------------------------
# synthetic patterns
# ----------------------------------------------------------------------
@pytest.fixture
def pingpong_trace():
    return false_sharing_pingpong(4, rounds=25)


@pytest.fixture
def producer_trace():
    return producer_consumer(4, words=16, rounds=8)


@pytest.fixture
def migratory_trace():
    return migratory(4, words=8, rounds=20)


@pytest.fixture
def random_trace():
    return uniform_random(6, words=128, num_events=3000, seed=7)


# ----------------------------------------------------------------------
# scaled-down workloads (session-scoped: generated once)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def lu_trace():
    return LU(12, num_procs=4).generate()


@pytest.fixture(scope="session")
def jacobi_trace():
    return Jacobi(16, iterations=3, num_procs=4).generate()


@pytest.fixture(scope="session")
def mp3d_trace():
    return MP3D(40, num_cells=16, time_steps=4, num_procs=4, seed=2).generate()


@pytest.fixture(scope="session")
def water_trace():
    return Water(8, time_steps=2, num_procs=4).generate()


@pytest.fixture(scope="session")
def matmul_trace():
    return MatMul(10, num_procs=4).generate()


@pytest.fixture(scope="session")
def fft_trace():
    return FFT(64, num_procs=4).generate()


@pytest.fixture(scope="session")
def workload_traces(lu_trace, jacobi_trace, mp3d_trace, water_trace,
                    matmul_trace, fft_trace):
    """All scaled workload traces, keyed by family name."""
    return {"lu": lu_trace, "jacobi": jacobi_trace, "mp3d": mp3d_trace,
            "water": water_trace, "matmul": matmul_trace, "fft": fft_trace}
