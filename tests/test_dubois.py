"""Unit tests for the Appendix A classifier, including the paper's

hand-worked Figures 1-4."""

import pytest

from repro.classify import DuboisClassifier, MissClass, classify
from repro.errors import TraceError
from repro.mem import BlockMap
from repro.trace import TraceBuilder
from repro.trace.events import ACQUIRE, LOAD, RELEASE, STORE


class TestPaperFigure1:
    """Fig 1: block-size effect — CTS misses convert to PTS misses."""

    def test_one_word_blocks(self, fig1_trace):
        bd = classify(fig1_trace, 4)
        assert (bd.pc, bd.cts, bd.cfs, bd.pts, bd.pfs) == (2, 2, 0, 0, 0)

    def test_two_word_blocks(self, fig1_trace):
        bd = classify(fig1_trace, 8)
        assert (bd.pc, bd.cts, bd.cfs, bd.pts, bd.pfs) == (1, 1, 0, 1, 0)

    def test_essential_not_increasing(self, fig1_trace):
        assert classify(fig1_trace, 8).essential \
            <= classify(fig1_trace, 4).essential

    def test_pts_can_increase_with_block_size(self, fig1_trace):
        """The paper's point: PTS alone may grow when blocks grow."""
        assert classify(fig1_trace, 8).pts > classify(fig1_trace, 4).pts


class TestPaperFigure2:
    """Fig 2: interleaving changes the essential miss count."""

    def test_delayed_store_creates_extra_essential_miss(self, fig2_traces):
        eager, delayed = fig2_traces
        assert classify(eager, 8).essential == 2
        assert classify(delayed, 8).essential == 3


class TestPaperFigure3:
    """Fig 3: CFS example / the miss both prior schemes call false."""

    def test_ours_column(self, fig3_trace):
        bd = classify(fig3_trace, 8)
        assert (bd.pc, bd.cts, bd.cfs, bd.pts, bd.pfs) == (1, 0, 1, 1, 0)


class TestPaperFigure4:
    """Fig 4: our column of the Eggers/Torrellas contrast."""

    def test_ours_column(self, fig4_trace):
        bd = classify(fig4_trace, 8)
        assert (bd.pc, bd.cts, bd.cfs, bd.pts, bd.pfs) == (2, 0, 0, 1, 1)


class TestBasics:
    def test_single_processor_only_cold(self):
        t = TraceBuilder(1).stores(0, range(8)).loads(0, range(8)).build()
        bd = classify(t, 16)
        assert bd.total == bd.pc == 2
        assert bd.data_refs == 16

    def test_write_by_other_processor_invalidates(self):
        t = TraceBuilder(2).load(0, 0).store(1, 0).load(0, 0).build()
        bd = classify(t, 4)
        assert bd.pts == 1  # P0's second load communicates P1's value

    def test_store_counts_as_access(self):
        """Paper: 'an access can be a load or a store'."""
        t = TraceBuilder(2).store(0, 0).load(1, 1).store(1, 0).build()
        bd = classify(t, 8)
        # P1's cold lifetime becomes essential via its *store* to word 0
        assert bd.cts == 1

    def test_writer_own_value_not_communication(self):
        t = TraceBuilder(2).store(0, 0).load(0, 0).load(0, 0).build()
        bd = classify(t, 4)
        assert bd.pts == 0 and bd.total == 1

    def test_lifetimes_classified_at_end_of_simulation(self):
        t = TraceBuilder(2).store(0, 0).load(1, 0).build()
        bd = classify(t, 4)
        assert bd.total == 2  # both live lifetimes classified at finish

    def test_sync_events_ignored(self):
        t = (TraceBuilder(2).store(0, 0).acquire(1, 100).load(1, 0)
             .release(1, 100).build())
        bd = classify(t, 4)
        assert bd.data_refs == 2

    def test_useless_miss_detected(self):
        # P0 and P1 touch different words of one block; P1 re-misses on its
        # own word after P0's store: pure false sharing.
        t = (TraceBuilder(2)
             .store(1, 1)  # P1 cold
             .store(0, 0)  # P0 cold (invalidates P1)
             .load(1, 1)   # P1 misses again, reads only its own word
             .build())
        bd = classify(t, 8)
        assert bd.pfs == 1

    def test_c_flags_cleared_blockwise_on_detection(self):
        # After an essential detection, other modified words of the same
        # block are considered delivered: no second PTS for word 1.
        t = (TraceBuilder(2)
             .load(0, 0).load(0, 1)    # P0 cold
             .store(1, 0).store(1, 1)  # P1 cold + invalidate P0
             .load(0, 0)               # PTS (communicates words 0 and 1)
             .store(1, 2)              # invalidate P0 again (word 2 foreign)
             .load(0, 1)               # word 1 already delivered -> PFS
             .build())
        bd = classify(t, 16)
        assert bd.pts == 1
        assert bd.pfs == 1


class TestColdRefinement:
    def test_pc_requires_unmodified_block(self):
        t = TraceBuilder(2).load(0, 0).build()
        assert classify(t, 4).pc == 1

    def test_cfs_dirty_block_value_unused(self):
        t = TraceBuilder(2).store(0, 1).load(1, 0).build()
        bd = classify(t, 8)
        assert bd.cfs == 1 and bd.cts == 0

    def test_cts_dirty_block_value_used(self):
        t = TraceBuilder(2).store(0, 1).load(1, 0).load(1, 1).build()
        bd = classify(t, 8)
        assert bd.cts == 1 and bd.cfs == 0

    def test_cold_subtype_depends_on_state_at_fetch(self):
        # P1 fetches a CLEAN block; P0 modifies it later (ending the
        # lifetime); the cold miss stays PC.
        t = TraceBuilder(2).load(1, 0).store(0, 1).load(1, 1).build()
        bd = classify(t, 8)
        assert bd.pc >= 1
        assert bd.cfs == 0


class TestStreamingAPI:
    def test_access_and_finish(self):
        clf = DuboisClassifier(2, BlockMap(4))
        clf.access(0, STORE, 0)
        clf.access(1, LOAD, 0)
        bd = clf.finish()
        assert bd.total == 2

    def test_event_ignores_sync(self):
        clf = DuboisClassifier(2, BlockMap(4))
        clf.event(0, ACQUIRE, 9)
        clf.event(0, RELEASE, 9)
        assert clf.finish().data_refs == 0

    def test_access_rejects_sync_op(self):
        clf = DuboisClassifier(2, BlockMap(4))
        with pytest.raises(TraceError):
            clf.access(0, ACQUIRE, 9)

    def test_double_finish_rejected(self):
        clf = DuboisClassifier(1, BlockMap(4))
        clf.finish()
        with pytest.raises(TraceError):
            clf.finish()

    def test_access_after_finish_rejected(self):
        clf = DuboisClassifier(1, BlockMap(4))
        clf.finish()
        with pytest.raises(TraceError):
            clf.access(0, LOAD, 0)

    def test_nonpositive_procs_rejected(self):
        with pytest.raises(TraceError):
            DuboisClassifier(0, BlockMap(4))


class TestMissRecords:
    def test_records_capture_lifetimes(self, fig1_trace):
        records = []
        DuboisClassifier.classify_trace(fig1_trace, BlockMap(8),
                                        record_misses=True,
                                        out_records=records)
        assert len(records) == 3
        classes = sorted(r.mclass.value for r in records)
        assert classes == ["CTS", "PC", "PTS"]

    def test_record_boundaries(self):
        t = TraceBuilder(2).load(0, 0).store(1, 0).load(0, 0).build()
        records = []
        DuboisClassifier.classify_trace(t, BlockMap(4), record_misses=True,
                                        out_records=records)
        first = next(r for r in records if r.mclass is MissClass.PC)
        assert first.start == 0
        assert first.end == 2  # ended by P1's store (second data ref)
