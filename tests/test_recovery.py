"""Interruption & self-healing suite: the robustness layer's contracts.

Covers the acceptance criteria of the interruptible-sweeps work:

* **journal recovery** — a torn final line (kill mid-``write``) is
  truncated away on open; a journal written by a different code release
  is rejected with :class:`~repro.errors.StaleJournalError`; compaction
  folds duplicates and absorbed shard partials; stray ``*.tmp`` files
  are garbage-collected on open;
* **two-phase shutdown** — the first signal stops dispatch and exits
  with the resumable code within the drain budget; a second signal
  forces immediate teardown, killing registered children;
* **heartbeat watchdog** — a slow-but-alive cell (progress counter
  advancing) survives a stall timeout shorter than its runtime, while a
  genuinely hung cell is still reaped within the timeout;
* **exit codes** — the CLI maps outcomes to the documented constants.

Everything runs against small synthetic grids so the whole file stays
in the sub-minute range.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.classify.breakdown import DuboisBreakdown
from repro.errors import (
    EXIT_COMPLETED,
    EXIT_FAILED,
    EXIT_INTERRUPTED,
    EXIT_RESOURCE_EXHAUSTED,
    StaleJournalError,
    SweepInterrupted,
)
from repro.runtime import RetryPolicy, Supervisor
from repro.runtime.checkpoint import CheckpointJournal, journal_digest
from repro.runtime.faults import tear_jsonl_tail
from repro.runtime.resources import gc_stale_tmp
from repro.runtime import signals

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")

ONE_SHOT = RetryPolicy(max_attempts=1, base_delay=0.01, max_delay=0.02)
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


def _bd(n: int) -> DuboisBreakdown:
    return DuboisBreakdown(pc=n, cts=2, cfs=3, pts=4, pfs=5,
                           data_refs=n + 14)


# ----------------------------------------------------------------------
# journal: torn tail, stale header, compaction
# ----------------------------------------------------------------------
class TestTornTailRecovery:
    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path), "k")
        journal.record(("classify", 16, "dubois"), _bd(1))
        journal.record(("classify", 64, "dubois"), _bd(2))
        journal.close()
        assert tear_jsonl_tail(journal.path)

        recovered = CheckpointJournal(str(tmp_path), "k")
        completed = recovered.load()
        # The torn record is gone; the intact prefix survives.
        assert set(completed) == {("classify", 16, "dubois")}
        with open(recovered.path, "rb") as fh:
            assert fh.read().endswith(b"\n")

    def test_append_after_recovery_starts_on_clean_line(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path), "k")
        journal.record(("classify", 16, "dubois"), _bd(1))
        journal.record(("classify", 64, "dubois"), _bd(2))
        journal.close()
        tear_jsonl_tail(journal.path)

        # Without recovery this append would glue onto the torn fragment
        # and corrupt both records.
        repaired = CheckpointJournal(str(tmp_path), "k")
        repaired.record(("classify", 64, "dubois"), _bd(2))
        repaired.close()
        completed = CheckpointJournal(str(tmp_path), "k").load()
        assert completed == {("classify", 16, "dubois"): _bd(1),
                             ("classify", 64, "dubois"): _bd(2)}

    def test_tear_noop_on_tiny_file(self, tmp_path):
        path = tmp_path / "tiny.jsonl"
        path.write_bytes(b"{}\n")
        assert not tear_jsonl_tail(str(path))


class TestJournalVersioning:
    def test_fresh_journal_starts_with_header(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path), "k")
        journal.record(("classify", 16, "dubois"), _bd(1))
        journal.close()
        first = json.loads(open(journal.path, encoding="utf-8").readline())
        assert first["kind"] == "repro-journal"
        assert first["digest"] == journal_digest("k")
        # ...and its own writer accepts it.
        assert CheckpointJournal(str(tmp_path), "k").load() != {}

    def test_stale_header_is_rejected_with_remedy(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path), "k")
        journal.record(("classify", 16, "dubois"), _bd(1))
        journal.close()
        # Rewrite the header as if an older release had written it.
        lines = open(journal.path, encoding="utf-8").read().splitlines()
        header = json.loads(lines[0])
        header["digest"] = "0" * 16
        header["writer"] = "0.0.1"
        with open(journal.path, "w", encoding="utf-8") as fh:
            fh.write("\n".join([json.dumps(header)] + lines[1:]) + "\n")

        stale = CheckpointJournal(str(tmp_path), "k")
        with pytest.raises(StaleJournalError) as exc:
            stale.load()
        message = str(exc.value)
        assert "0.0.1" in message
        assert "--resume" in message  # the remedy, not just the diagnosis

    def test_stale_header_also_blocks_appends(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path), "k")
        journal.record(("classify", 16, "dubois"), _bd(1))
        journal.close()
        lines = open(journal.path, encoding="utf-8").read().splitlines()
        header = json.loads(lines[0])
        header["digest"] = "f" * 16
        with open(journal.path, "w", encoding="utf-8") as fh:
            fh.write("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(StaleJournalError):
            CheckpointJournal(str(tmp_path), "k").record(
                ("classify", 64, "dubois"), _bd(2))

    def test_legacy_headerless_journal_still_loads(self, tmp_path):
        path = tmp_path / "k.jsonl"
        record = {"v": 1, "key": "k", "cell": ["classify", 16, "dubois"],
                  "result": {"type": "DuboisBreakdown", "pc": 1, "cts": 2,
                             "cfs": 3, "pts": 4, "pfs": 5, "data_refs": 15}}
        path.write_text(json.dumps(record) + "\n")
        completed = CheckpointJournal(str(tmp_path), "k").load()
        assert completed == {("classify", 16, "dubois"): _bd(1)}


class TestCompaction:
    def test_duplicates_fold_to_latest(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path), "k")
        cell = ("classify", 16, "dubois")
        journal.record(cell, _bd(1))
        journal.record(cell, _bd(7))  # a retried run re-recorded the cell
        dropped = journal.compact()
        assert dropped == 1
        completed = CheckpointJournal(str(tmp_path), "k").load()
        assert completed == {cell: _bd(7)}

    def test_absorbed_shard_partials_dropped(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path), "k")
        parent = ("classify", 64, "dubois")
        for s in range(3):
            journal.record(("classify-shard", 64, "dubois", "d" * 8, s),
                           _bd(s))
        journal.record(parent, _bd(9))
        assert journal.compact() == 3
        completed = CheckpointJournal(str(tmp_path), "k").load()
        assert set(completed) == {parent}

    def test_orphan_shard_partials_survive(self, tmp_path):
        """Partials whose parent never merged are still worth resuming."""
        journal = CheckpointJournal(str(tmp_path), "k")
        partial = ("classify-shard", 64, "dubois", "d" * 8, 0)
        journal.record(partial, _bd(0))
        assert journal.compact() == 0
        assert set(CheckpointJournal(str(tmp_path), "k").load()) == {partial}

    def test_compact_noop_leaves_file_untouched(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path), "k")
        journal.record(("classify", 16, "dubois"), _bd(1))
        journal.close()
        before = open(journal.path, "rb").read()
        assert CheckpointJournal(str(tmp_path), "k").compact() == 0
        assert open(journal.path, "rb").read() == before

    def test_compact_leaves_no_tmp_files(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path), "k")
        cell = ("classify", 16, "dubois")
        journal.record(cell, _bd(1))
        journal.record(cell, _bd(2))
        journal.compact()
        assert not [n for n in os.listdir(tmp_path) if ".tmp" in n]


class TestTmpGC:
    def test_stale_tmp_reaped_fresh_kept(self, tmp_path):
        old = tmp_path / "entry.npz.1234.tmp"
        old.write_bytes(b"x")
        ancient = time.time() - 7200
        os.utime(old, (ancient, ancient))
        fresh = tmp_path / "entry.npz.5678.tmp"
        fresh.write_bytes(b"y")
        keeper = tmp_path / "entry.npz"
        keeper.write_bytes(b"z")

        assert gc_stale_tmp(str(tmp_path)) == 1
        assert not old.exists()
        assert fresh.exists()       # a live writer may still own it
        assert keeper.exists()      # never touch real entries

    def test_journal_open_reaps_stale_tmp(self, tmp_path):
        leak = tmp_path / "k.jsonl.999.tmp"
        leak.write_bytes(b"partial compaction")
        ancient = time.time() - 7200
        os.utime(leak, (ancient, ancient))
        CheckpointJournal(str(tmp_path), "k")
        assert not leak.exists()

    def test_trace_cache_open_reaps_stale_tmp(self, tmp_path):
        from repro.trace.cache import WorkloadTraceCache

        leak = tmp_path / "TRACE-abc.npz.4242.tmp"
        leak.write_bytes(b"partial write")
        ancient = time.time() - 7200
        os.utime(leak, (ancient, ancient))
        WorkloadTraceCache(str(tmp_path))
        assert not leak.exists()

    def test_age_guard_boundary_is_exact(self, tmp_path):
        """Just-under the guard survives; exactly at (or past) it is
        reaped — the boundary is the contract a live writer's safety
        rests on, so it is pinned, not approximate."""
        from repro.runtime.resources import DEFAULT_TMP_MAX_AGE_S

        now = time.time()
        just_under = tmp_path / "a.npz.1.tmp"
        just_under.write_bytes(b"x")
        os.utime(just_under, (now - (DEFAULT_TMP_MAX_AGE_S - 0.5),) * 2)
        exactly_at = tmp_path / "b.npz.2.tmp"
        exactly_at.write_bytes(b"y")
        os.utime(exactly_at, (now - DEFAULT_TMP_MAX_AGE_S,) * 2)

        assert gc_stale_tmp(str(tmp_path), now=now) == 1
        assert just_under.exists()
        assert not exactly_at.exists()

    def test_age_guard_env_override(self, tmp_path, monkeypatch):
        from repro.runtime.resources import (
            DEFAULT_TMP_MAX_AGE_S,
            resolve_tmp_max_age,
        )

        now = time.time()
        leak = tmp_path / "c.npz.3.tmp"
        leak.write_bytes(b"z")
        os.utime(leak, (now - 10.0,) * 2)

        # Default guard keeps a 10s-old file...
        assert gc_stale_tmp(str(tmp_path), now=now) == 0
        # ...a 5s env guard reaps it.
        monkeypatch.setenv("REPRO_TMP_MAX_AGE_S", "5")
        assert resolve_tmp_max_age() == 5.0
        assert gc_stale_tmp(str(tmp_path), now=now) == 1
        assert not leak.exists()
        # The explicit argument always wins over the environment.
        monkeypatch.setenv("REPRO_TMP_MAX_AGE_S", "1")
        assert resolve_tmp_max_age(42.0) == 42.0
        # A malformed override warns and falls back to the default.
        monkeypatch.setenv("REPRO_TMP_MAX_AGE_S", "soon")
        with pytest.warns(UserWarning, match="REPRO_TMP_MAX_AGE_S"):
            assert resolve_tmp_max_age() == DEFAULT_TMP_MAX_AGE_S


# ----------------------------------------------------------------------
# shutdown coordinator & cancellation points
# ----------------------------------------------------------------------
class TestShutdownCoordinator:
    def test_no_coordinator_is_a_noop(self):
        assert signals.get_shutdown() is None
        signals.check_interrupt()  # must not raise

    def test_request_turns_progress_into_interrupt(self):
        with signals.graceful_shutdown() as coord:
            signals.note_progress(10)  # fine before the request
            coord.request()
            with pytest.raises(SweepInterrupted):
                signals.check_interrupt()
            with pytest.raises(SweepInterrupted):
                signals.note_progress(1)
        signals.check_interrupt()  # uninstalled on exit

    def test_interruptible_sleep_wakes_early(self):
        with signals.graceful_shutdown() as coord:
            coord.request()
            t0 = time.monotonic()
            with pytest.raises(SweepInterrupted):
                signals.interruptible_sleep(30.0)
            assert time.monotonic() - t0 < 1.0

    def test_serial_supervisor_stops_between_cells(self):
        ran = []

        def runner(task):
            ran.append(task)
            signals.get_shutdown().request()
            return task

        with signals.graceful_shutdown():
            sup = Supervisor(runner, jobs=1, retry=ONE_SHOT)
            with pytest.raises(SweepInterrupted):
                sup.run([1, 2, 3])
        assert ran == [1]  # dispatch stopped after the request

    def test_second_signal_forces_immediate_teardown(self, tmp_path):
        """Double SIGINT: a wedged parent dies at once, taking its
        registered children with it, with the resumable exit code."""
        script = tmp_path / "wedge.py"
        script.write_text(f"""
import multiprocessing, sys, time
sys.path.insert(0, {SRC!r})
from repro.runtime.signals import graceful_shutdown

def napper():
    time.sleep(300)

if __name__ == "__main__":
    with graceful_shutdown() as coord:
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=napper)
        child.start()
        coord.register_process(child)
        print("ready", child.pid, flush=True)
        while True:
            time.sleep(0.05)  # no cancellation point: simulates a wedge
""")
        proc = subprocess.Popen([sys.executable, str(script)],
                                stdout=subprocess.PIPE, text=True)
        try:
            line = proc.stdout.readline().split()
            assert line[0] == "ready"
            child_pid = int(line[1])
            proc.send_signal(signal.SIGINT)
            time.sleep(0.3)
            assert proc.poll() is None  # first signal alone: still draining
            proc.send_signal(signal.SIGINT)
            rc = proc.wait(timeout=10)
            assert rc == EXIT_INTERRUPTED
            # The registered child must not outlive the forced teardown.
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                try:
                    os.kill(child_pid, 0)
                except ProcessLookupError:
                    break
                # still listed: may be a zombie awaiting its (dead)
                # parent's reaper -- PID 1 adoption clears it shortly.
                if open(f"/proc/{child_pid}/stat").read().split()[2] == "Z":
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"registered child {child_pid} survived "
                            "forced teardown")
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)


# ----------------------------------------------------------------------
# heartbeat watchdog: slow vs hung
# ----------------------------------------------------------------------
def _slow_but_alive(task):
    # ~0.6 s of runtime against a 0.25 s stall timeout, but the progress
    # counter ticks throughout -- the watchdog must never fire.
    marker, task = task
    with open(f"{marker}.{os.getpid()}.{task}", "w"):
        pass
    for _ in range(30):
        time.sleep(0.02)
        signals.note_progress(1)
    return task


class TestHeartbeatWatchdog:
    def test_slow_but_heartbeating_cell_is_never_killed(self, tmp_path):
        marker = str(tmp_path / "started")
        sup = Supervisor(_slow_but_alive, jobs=2, timeout=0.25,
                         retry=ONE_SHOT)
        assert sup.run([(marker, 0), (marker, 1)]) == [0, 1]
        # One start marker per task: a watchdog kill would have re-run
        # the cell (serial fallback) and left a second marker.
        starts = sorted(n.rsplit(".", 1)[1] for n in os.listdir(tmp_path))
        assert starts == ["0", "1"]

    def test_hung_cell_reaped_and_retried(self, tmp_path):
        """A frozen worker dies at ~timeout and the cell is retried."""
        from repro.runtime import FaultPlan

        attempts = tmp_path / "attempts"

        def runner(task):
            with open(attempts / f"{os.getpid()}.{task}", "w"):
                pass
            return task * 10

        attempts.mkdir()
        plan = FaultPlan(hang={1: 1}, hang_seconds=300.0)
        sup = Supervisor(runner, jobs=2, timeout=0.5, retry=FAST_RETRY,
                         fault_plan=plan)
        t0 = time.monotonic()
        assert sup.run([0, 1, 2]) == [0, 10, 20]
        elapsed = time.monotonic() - t0
        # Killed at ~timeout then retried -- nowhere near hang_seconds.
        assert 0.4 < elapsed < 30.0


# ----------------------------------------------------------------------
# exit codes
# ----------------------------------------------------------------------
class TestExitCodes:
    def test_documented_constants(self):
        assert EXIT_COMPLETED == 0
        assert EXIT_FAILED == 2
        assert EXIT_RESOURCE_EXHAUSTED == 3
        assert EXIT_INTERRUPTED == 75  # sysexits.h EX_TEMPFAIL

    def test_cli_maps_repro_errors_to_exit_failed(self, capsys):
        from repro.cli import main

        rc = main(["classify", "NOT_A_WORKLOAD", "--block", "64"])
        assert rc == EXIT_FAILED
        assert "error:" in capsys.readouterr().err

    def test_sigint_mid_sweep_exits_resumable_fast(self, tmp_path):
        """First SIGINT during a real multi-cell sweep: resumable exit
        code, prompt exit, journal on disk, no stray temp files."""
        ckpt = tmp_path / "ckpt"
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep", "MP3D1000",
             "--jobs", "2", "--resume", str(ckpt)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            text=True)
        try:
            # Wait for the journal to appear so the kill lands mid-sweep.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if ckpt.is_dir() and any(
                        n.endswith(".jsonl") for n in os.listdir(ckpt)):
                    break
                if proc.poll() is not None:
                    pytest.skip("sweep finished before the signal landed")
                time.sleep(0.05)
            t0 = time.monotonic()
            proc.send_signal(signal.SIGINT)
            stderr = proc.stderr.read()
            rc = proc.wait(timeout=30)
            drain = time.monotonic() - t0
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
        if rc == 0:
            pytest.skip("sweep finished before the signal landed")
        assert rc == EXIT_INTERRUPTED
        assert drain < 5.0
        assert "--resume" in stderr  # the operator hint
        assert not [n for n in os.listdir(ckpt) if ".tmp" in n]
