"""Unit tests for the three-way classifier comparison."""

import pytest

from repro.classify import compare_classifications
from repro.trace import TraceBuilder
from repro.trace.synth import uniform_random


class TestComparison:
    def test_totals_always_agree(self, fig3_trace, fig4_trace):
        for trace in (fig3_trace, fig4_trace):
            c = compare_classifications(trace, 8)
            assert c.ours.total == c.eggers.total == c.torrellas.total

    def test_cold_ours_equals_eggers(self, fig4_trace):
        c = compare_classifications(fig4_trace, 8)
        assert c.ours.cold == c.eggers.cold

    def test_table1_rows_complete(self, fig3_trace):
        rows = compare_classifications(fig3_trace, 8).table1_rows()
        assert set(rows) == {
            "PTS-ours", "TSM-Eggers", "TSM-Torrellas",
            "COLD-ours", "COLD-Eggers", "COLD-Torrellas",
            "PFS-ours", "PFS-Eggers", "PFS-Torrellas"}

    def test_table1_row_values(self, fig4_trace):
        rows = compare_classifications(fig4_trace, 8).table1_rows()
        assert rows["PTS-ours"] == 1
        assert rows["TSM-Eggers"] == 0
        assert rows["TSM-Torrellas"] == 1
        assert rows["COLD-Torrellas"] == 3

    def test_essential_rate_gap(self, fig4_trace):
        c = compare_classifications(fig4_trace, 8)
        ours = c.ours.essential_rate
        eggers = c.eggers.rate(c.eggers.essential_estimate)
        assert c.essential_rate_gap == pytest.approx(eggers - ours)

    def test_eggers_tsm_implies_torrellas_tsm_or_cm(self):
        """Paper section 3.2's claim, checked per miss (Torrellas may file
        the same miss as cold because its cold rule is word-granular)."""
        from repro.analysis.invariants import (
            check_eggers_tsm_subset_torrellas)
        t = uniform_random(4, words=64, num_events=2000, seed=11)
        for bb in (8, 32, 128):
            assert check_eggers_tsm_subset_torrellas(t, bb) == []

    def test_sync_events_skipped(self):
        t = (TraceBuilder(2).acquire(0, 9).store(0, 0).release(0, 9)
             .acquire(1, 9).load(1, 0).release(1, 9).build())
        c = compare_classifications(t, 4)
        assert c.ours.data_refs == 2

    def test_block_bytes_recorded(self, fig3_trace):
        c = compare_classifications(fig3_trace, 32)
        assert c.block_bytes == 32
        assert c.trace_name == "fig3"
