"""Unit tests for the bump allocator."""

import pytest

from repro.errors import LayoutError
from repro.mem.allocator import Allocator, Region


class TestRegion:
    def test_end_and_nbytes(self):
        r = Region("r", base=4, words=3)
        assert r.end == 7
        assert r.nbytes == 12

    def test_word_indexing(self):
        r = Region("r", base=4, words=3)
        assert r.word(0) == 4 and r.word(2) == 6
        with pytest.raises(LayoutError):
            r.word(3)
        with pytest.raises(LayoutError):
            r.word(-1)

    def test_contains(self):
        r = Region("r", base=4, words=3)
        assert 4 in r and 6 in r
        assert 3 not in r and 7 not in r


class TestAllocator:
    def test_sequential_packing(self):
        a = Allocator()
        r1 = a.alloc_bytes("a", 8)
        r2 = a.alloc_bytes("b", 4)
        assert r1.base == 0 and r1.words == 2
        assert r2.base == 2, "no padding between word-aligned allocations"

    def test_rounds_partial_words_up(self):
        a = Allocator()
        r = a.alloc_bytes("p", 36)
        assert r.words == 9

    def test_alignment(self):
        a = Allocator()
        a.alloc_bytes("x", 4)
        r = a.alloc_bytes("aligned", 8, align_bytes=64)
        assert r.base == 16  # 64 bytes = 16 words

    def test_bad_alignment_rejected(self):
        a = Allocator()
        with pytest.raises(LayoutError):
            a.alloc_bytes("x", 4, align_bytes=6)

    def test_zero_size_rejected(self):
        with pytest.raises(LayoutError):
            Allocator().alloc_bytes("x", 0)

    def test_duplicate_names_rejected(self):
        a = Allocator()
        a.alloc_bytes("x", 4)
        with pytest.raises(LayoutError):
            a.alloc_bytes("x", 4)

    def test_base_word_offset(self):
        a = Allocator(base_word=100)
        assert a.alloc_bytes("x", 4).base == 100

    def test_negative_base_rejected(self):
        with pytest.raises(LayoutError):
            Allocator(base_word=-1)

    def test_used_accounting(self):
        a = Allocator()
        a.alloc_bytes("x", 36)
        a.alloc_bytes("y", 4)
        assert a.used_words == 10
        assert a.used_bytes == 40

    def test_pad_to(self):
        a = Allocator()
        a.alloc_bytes("x", 4)
        a.pad_to(32)
        assert a.alloc_bytes("y", 4).base == 8

    def test_region_lookup(self):
        a = Allocator()
        r = a.alloc_bytes("x", 8)
        assert a.region("x") is r
        with pytest.raises(LayoutError):
            a.region("missing")

    def test_owner_of(self):
        a = Allocator()
        r1 = a.alloc_bytes("x", 8)
        r2 = a.alloc_bytes("y", 8)
        assert a.owner_of(0) is r1
        assert a.owner_of(2) is r2
        assert a.owner_of(99) is None


class TestAllocArray:
    def test_elements_are_contiguous_and_packed(self):
        a = Allocator()
        elems = a.alloc_array("particle", 3, 36)
        assert [e.base for e in elems] == [0, 9, 18]
        assert all(e.words == 9 for e in elems)
        assert elems[1].name == "particle[1]"

    def test_paper_false_sharing_layout(self):
        """36-byte particles straddle 32-byte blocks — the MP3D effect."""
        from repro.mem import BlockMap
        a = Allocator()
        elems = a.alloc_array("p", 4, 36)
        bm = BlockMap(32)
        # particle 1 (words 9..17) spans blocks 1 and 2; particle 2 starts
        # inside block 2: adjacent particles share a block.
        assert bm.block_of(elems[1].end - 1) == bm.block_of(elems[2].base)

    def test_empty_array_rejected(self):
        with pytest.raises(LayoutError):
            Allocator().alloc_array("p", 0, 4)

    def test_regions_lists_top_level_only(self):
        a = Allocator()
        a.alloc_array("p", 3, 4)
        names = [r.name for r in a.regions]
        assert names == ["p"], "per-element regions are views, not allocations"
