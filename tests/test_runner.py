"""Unit tests for the protocol runner/registry and the Counters type."""

import pytest

from repro.errors import ProtocolError
from repro.mem import BlockMap
from repro.protocols import (
    ALL_PROTOCOLS,
    Counters,
    make_protocol,
    protocol_names,
    run_protocol,
    run_protocols,
)


class TestRegistry:
    def test_all_protocols_in_paper_order(self):
        assert ALL_PROTOCOLS == ("MIN", "OTF", "RD", "SD", "SRD", "WBWI",
                                 "MAX")

    def test_protocol_names_starts_with_paper_lineup(self):
        names = protocol_names()
        assert tuple(names[:7]) == ALL_PROTOCOLS

    def test_make_protocol(self):
        p = make_protocol("OTF", 4, BlockMap(8))
        assert p.name == "OTF"
        assert p.num_procs == 4

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ProtocolError):
            make_protocol("NOPE", 1, BlockMap(4))


class TestRunners:
    def test_run_protocol(self, producer_trace):
        r = run_protocol("OTF", producer_trace, 16)
        assert r.protocol == "OTF"
        assert r.num_procs == producer_trace.num_procs

    def test_run_protocols_default_all(self, producer_trace):
        res = run_protocols(producer_trace, 16)
        assert list(res) == list(ALL_PROTOCOLS)

    def test_run_protocols_subset_preserves_order(self, producer_trace):
        res = run_protocols(producer_trace, 16, ["MAX", "MIN"])
        assert list(res) == ["MAX", "MIN"]

    def test_same_trace_same_results(self, producer_trace):
        a = run_protocol("RD", producer_trace, 16)
        b = run_protocol("RD", producer_trace, 16)
        assert a.breakdown.as_dict() == b.breakdown.as_dict()
        assert a.counters.as_dict() == b.counters.as_dict()


class TestCounters:
    def test_as_dict_roundtrip(self):
        c = Counters(fetches=3, invalidations_sent=2)
        d = c.as_dict()
        assert d["fetches"] == 3
        assert d["invalidations_sent"] == 2
        assert d["replacements"] == 0

    def test_describe_result(self, producer_trace):
        r = run_protocol("MIN", producer_trace, 16)
        text = r.describe()
        assert "MIN" in text and "miss_rate" in text
