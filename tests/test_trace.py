"""Unit tests for the Trace container (repro.trace.trace)."""

import pytest

from repro.errors import TraceError
from repro.trace.events import ACQUIRE, LOAD, RELEASE, STORE
from repro.trace.trace import Trace, TraceCounts, merge_program_order


def simple_events():
    return [(0, LOAD, 0), (1, STORE, 4), (0, ACQUIRE, 8),
            (0, LOAD, 4), (0, RELEASE, 8), (1, LOAD, 0)]


class TestConstruction:
    def test_infers_num_procs(self):
        t = Trace(simple_events())
        assert t.num_procs == 2

    def test_explicit_num_procs(self):
        t = Trace(simple_events(), num_procs=8)
        assert t.num_procs == 8

    def test_empty_trace(self):
        t = Trace([])
        assert len(t) == 0
        assert t.num_procs == 1

    def test_validation_rejects_out_of_range_proc(self):
        with pytest.raises(TraceError):
            Trace([(5, LOAD, 0)], num_procs=2)

    def test_validation_can_be_skipped(self):
        t = Trace([(5, LOAD, 0)], num_procs=2, validate=False)
        assert len(t) == 1

    def test_nonpositive_num_procs_rejected(self):
        with pytest.raises(TraceError):
            Trace([], num_procs=0)

    def test_meta_is_copied(self):
        meta = {"a": 1}
        t = Trace([], meta=meta)
        meta["a"] = 2
        assert t.meta["a"] == 1


class TestSequenceProtocol:
    def test_len_iter_getitem(self):
        t = Trace(simple_events())
        assert len(t) == 6
        assert list(t)[0] == (0, LOAD, 0)
        assert t[1] == (1, STORE, 4)

    def test_slice_returns_trace(self):
        t = Trace(simple_events(), name="x")
        head = t[:3]
        assert isinstance(head, Trace)
        assert len(head) == 3
        assert head.num_procs == t.num_procs

    def test_equality(self):
        assert Trace(simple_events()) == Trace(simple_events())
        assert Trace(simple_events()) != Trace(simple_events()[:-1],
                                               num_procs=2)


class TestViews:
    def test_data_events_filters_sync(self):
        t = Trace(simple_events())
        assert all(op in (LOAD, STORE) for _, op, _ in t.data_events())
        assert len(list(t.data_events())) == 4

    def test_per_processor_preserves_program_order(self):
        t = Trace(simple_events())
        streams = t.per_processor()
        assert streams[0] == [(0, LOAD, 0), (0, ACQUIRE, 8),
                              (0, LOAD, 4), (0, RELEASE, 8)]
        assert streams[1] == [(1, STORE, 4), (1, LOAD, 0)]

    def test_touched_words(self):
        t = Trace(simple_events())
        assert t.touched_words() == {0, 4}

    def test_touched_blocks(self):
        from repro.mem import BlockMap
        t = Trace(simple_events())
        assert t.touched_blocks(BlockMap(16)) == {0, 1}

    def test_counts(self):
        c = Trace(simple_events()).counts()
        assert c == TraceCounts(loads=3, stores=1, acquires=1, releases=1)
        assert c.data == 4
        assert c.total == 6


class TestCombinators:
    def test_concat(self):
        t = Trace(simple_events())
        tt = t.concat(t)
        assert len(tt) == 12

    def test_concat_mismatched_procs_rejected(self):
        t2 = Trace(simple_events())
        t8 = Trace(simple_events(), num_procs=8)
        with pytest.raises(TraceError):
            t2.concat(t8)

    def test_head(self):
        assert len(Trace(simple_events()).head(2)) == 2

    def test_sample_keeps_window_prefixes(self):
        events = [(0, LOAD, i) for i in range(100)]
        t = Trace(events)
        s = t.sample(0.2, granularity=10)
        assert len(s) == 20
        # first two of every ten
        assert s.events[:4] == [(0, LOAD, 0), (0, LOAD, 1),
                                (0, LOAD, 10), (0, LOAD, 11)]

    def test_sample_full_fraction_is_identity(self):
        t = Trace(simple_events())
        assert t.sample(1.0) is t

    def test_sample_bad_fraction(self):
        with pytest.raises(TraceError):
            Trace(simple_events()).sample(0.0)

    def test_format_mentions_events(self):
        text = Trace(simple_events(), name="demo").format(limit=2)
        assert "demo" in text and "more" in text


class TestMergeProgramOrder:
    def test_roundtrip(self):
        t = Trace(simple_events())
        streams = t.per_processor()
        order = [ev[0] for ev in t.events]
        rebuilt = merge_program_order(streams, order)
        assert rebuilt.events == t.events

    def test_incomplete_order_rejected(self):
        t = Trace(simple_events())
        with pytest.raises(TraceError):
            merge_program_order(t.per_processor(), [0, 1])

    def test_overrun_order_rejected(self):
        t = Trace(simple_events())
        order = [ev[0] for ev in t.events] + [0]
        with pytest.raises(TraceError):
            merge_program_order(t.per_processor(), order)
