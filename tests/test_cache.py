"""Failure-mode suite for the hardened workload trace cache.

Covers the acceptance criterion that a deliberately truncated cache entry
is detected on load, quarantined, and regenerated transparently — no API
consumer sees an exception — plus key invalidation on config/seed/version
change and the inter-process generation lock.
"""

import multiprocessing
import os
import time
import warnings

import pytest

from repro.errors import CacheIntegrityError, TraceFormatError
from repro.runtime.faults import corrupt_file
from repro.trace.cache import WorkloadTraceCache, workload_cache_key
from repro.trace.io import load_npz, save_npz
from repro.trace.trace import Trace
from repro.workloads.registry import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload("MATMUL24")


@pytest.fixture
def cache(tmp_path):
    return WorkloadTraceCache(str(tmp_path), memory=False)


# ----------------------------------------------------------------------
# integrity: checksum, truncation, quarantine, regeneration
# ----------------------------------------------------------------------
class TestIntegrity:
    def test_save_embeds_verified_checksum(self, tmp_path, workload):
        trace = workload.generate()
        path = str(tmp_path / "t.npz")
        save_npz(trace, path)
        assert load_npz(path) == trace  # verifies by default

    def test_truncated_entry_raises_integrity_error(self, tmp_path,
                                                    workload):
        path = str(tmp_path / "t.npz")
        save_npz(workload.generate(), path)
        corrupt_file(path, mode="truncate")
        with pytest.raises(CacheIntegrityError):
            load_npz(path)

    def test_garbled_entry_raises_integrity_error(self, tmp_path, workload):
        path = str(tmp_path / "t.npz")
        save_npz(workload.generate(), path)
        size = os.path.getsize(path)
        corrupt_file(path, mode="garble", offset=size // 2, length=32)
        # Depending on where the damage lands this surfaces as a zip/zlib
        # failure or a checksum mismatch; both are TraceFormatError.
        with pytest.raises(TraceFormatError):
            load_npz(path)

    @pytest.mark.parametrize("mode", ["truncate", "garble"])
    def test_corrupt_entry_quarantined_and_regenerated(self, cache,
                                                       workload, mode):
        """The headline guarantee: consumers never see the corruption."""
        original = cache.get(workload)
        path = cache.path_for(workload)
        corrupt_file(path, mode=mode, offset=os.path.getsize(path) // 2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            regenerated = cache.get(workload)  # must not raise
        assert regenerated == original
        assert os.path.exists(path + ".corrupt"), "evidence is preserved"
        assert load_npz(path) == original, "entry was rewritten intact"
        assert any("quarantined" in str(w.message) for w in caught)

    def test_memory_cache_bypasses_disk_corruption(self, tmp_path,
                                                   workload):
        cache = WorkloadTraceCache(str(tmp_path), memory=True)
        first = cache.get(workload)
        corrupt_file(cache.path_for(workload), mode="truncate")
        assert cache.get(workload) is first  # in-process hit, no disk read

    def test_atomic_save_leaves_no_tmp_files(self, tmp_path, workload):
        path = str(tmp_path / "t.npz")
        save_npz(workload.generate(), path)
        assert os.listdir(str(tmp_path)) == ["t.npz"]

    def test_legacy_entry_without_checksum_still_loads(self, tmp_path,
                                                       workload):
        import json

        import numpy as np

        trace = workload.generate()
        cols = trace.columns()
        header = json.dumps({"name": trace.name,
                             "num_procs": trace.num_procs, "meta": {}})
        path = str(tmp_path / "legacy.npz")
        np.savez_compressed(path, proc=cols.proc, op=cols.op,
                            addr=cols.addr, header=np.array(header))
        loaded = load_npz(path)
        assert loaded.num_procs == trace.num_procs
        assert len(loaded) == len(trace)


# ----------------------------------------------------------------------
# key invalidation
# ----------------------------------------------------------------------
class TestKeyInvalidation:
    def test_key_changes_with_config(self):
        assert (workload_cache_key(make_workload("LU32"))
                != workload_cache_key(make_workload("LU64")))

    def test_key_changes_with_seed(self, workload):
        class Reseeded:
            name = workload.name
            label = workload.label
            seed = workload.seed + 1

            def describe_config(self):
                return workload.describe_config()

        assert (workload_cache_key(workload)
                != workload_cache_key(Reseeded()))

    def test_key_changes_with_version(self, workload, monkeypatch):
        import repro

        before = workload_cache_key(workload)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert workload_cache_key(workload) != before

    def test_stale_entry_is_not_picked_up(self, cache, workload,
                                          monkeypatch):
        import repro

        cache.get(workload)
        old_path = cache.path_for(workload)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        new_path = cache.path_for(workload)
        assert new_path != old_path
        assert not os.path.exists(new_path)


# ----------------------------------------------------------------------
# concurrent generation (inter-process lock)
# ----------------------------------------------------------------------
class _MarkedWorkload:
    """Workload that records each generate() call in a shared file."""

    name = "marked"
    label = "marked"
    seed = 7

    def __init__(self, marker_path):
        self.marker_path = marker_path

    def describe_config(self):
        return {"marker": "fixed"}

    def generate(self):
        with open(self.marker_path, "a") as fh:
            fh.write(f"{os.getpid()}\n")
        time.sleep(0.3)  # widen the stampede window
        return make_workload("MATMUL24").generate()


def _concurrent_get(directory, marker):
    WorkloadTraceCache(directory, memory=False).get(
        _MarkedWorkload(marker))


class TestConcurrency:
    def test_two_processes_generate_once(self, tmp_path):
        directory = str(tmp_path)
        marker = str(tmp_path / "generations")
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_concurrent_get,
                             args=(directory, marker))
                 for _ in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        with open(marker) as fh:
            generations = fh.read().splitlines()
        assert len(generations) == 1, \
            f"stampede: {len(generations)} generations"
        # And the winner's entry is valid for later readers.
        trace = WorkloadTraceCache(directory, memory=False).get(
            _MarkedWorkload(marker))
        assert isinstance(trace, Trace)

    def test_lock_file_left_in_place(self, cache, workload):
        cache.get(workload)
        assert os.path.exists(cache.path_for(workload) + ".lock")


# ----------------------------------------------------------------------
# disk budget: LRU quota eviction + quarantine GC
# ----------------------------------------------------------------------
class _TaggedWorkload:
    """Distinct cache keys over identical (tiny) trace content."""

    name = "tagged"

    def __init__(self, tag):
        self.label = f"tagged{tag}"
        self.seed = tag

    def describe_config(self):
        return {"tag": self.seed}

    def generate(self):
        return make_workload("MATMUL24").generate()


class TestDiskBudget:
    def _entry_bytes(self, tmp_path):
        probe = WorkloadTraceCache(str(tmp_path / "probe"), memory=False)
        probe.get(_TaggedWorkload(0))
        return os.path.getsize(probe.path_for(_TaggedWorkload(0)))

    def test_quota_never_exceeded_after_eviction(self, tmp_path):
        """Acceptance: with a quota set, every write ends under it."""
        entry = self._entry_bytes(tmp_path)
        quota = int(2.5 * entry)
        cache = WorkloadTraceCache(str(tmp_path / "c"), memory=False,
                                   max_bytes=quota)
        for tag in range(5):
            cache.get(_TaggedWorkload(tag))
            assert cache.disk_usage_bytes() <= quota
        # The freshest entry always survives its own write.
        assert os.path.exists(cache.path_for(_TaggedWorkload(4)))

    def test_eviction_is_least_recently_used(self, tmp_path):
        entry = self._entry_bytes(tmp_path)
        cache = WorkloadTraceCache(str(tmp_path / "c"), memory=False,
                                   max_bytes=int(2.5 * entry))
        a, b = _TaggedWorkload(1), _TaggedWorkload(2)
        cache.get(a)
        cache.get(b)
        # Make b the stale entry regardless of write timing granularity.
        os.utime(cache.path_for(b), (1, 1))
        cache.get(_TaggedWorkload(3))  # pushes the cache over quota
        assert os.path.exists(cache.path_for(a))
        assert not os.path.exists(cache.path_for(b)), "LRU entry evicted"
        assert not os.path.exists(cache.path_for(b) + ".lock"), \
            "the evicted entry's lock file goes with it"

    def test_disk_hit_refreshes_recency(self, tmp_path):
        entry = self._entry_bytes(tmp_path)
        cache = WorkloadTraceCache(str(tmp_path / "c"), memory=False,
                                   max_bytes=int(2.5 * entry))
        a, b = _TaggedWorkload(1), _TaggedWorkload(2)
        cache.get(a)
        cache.get(b)
        os.utime(cache.path_for(a), (1, 1))  # a is ancient...
        cache.get(a)                         # ...until this disk hit
        os.utime(cache.path_for(b), (2, 2))
        cache.get(_TaggedWorkload(3))
        assert os.path.exists(cache.path_for(a)), "recently read, kept"
        assert not os.path.exists(cache.path_for(b))

    def test_single_oversized_entry_warns_but_survives(self, tmp_path):
        cache = WorkloadTraceCache(str(tmp_path / "c"), memory=False,
                                   max_bytes=64)
        wl = _TaggedWorkload(1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            trace = cache.get(wl)
        assert isinstance(trace, Trace)
        assert os.path.exists(cache.path_for(wl))
        assert any("exceeds the quota" in str(w.message) for w in caught)

    def test_rejects_nonpositive_quota(self, tmp_path):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            WorkloadTraceCache(str(tmp_path), max_bytes=0)


class TestQuarantineGC:
    def test_repeat_corruption_gets_unique_quarantine_names(self, cache,
                                                            workload):
        path = cache.path_for(workload)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            cache.get(workload)
            corrupt_file(path, mode="truncate")
            cache.get(workload)
            corrupt_file(path, mode="truncate")
            cache.get(workload)
        assert os.path.exists(path + ".corrupt")
        assert os.path.exists(path + ".corrupt.1")

    def test_open_keeps_only_newest_quarantined_per_key(self, tmp_path):
        base = str(tmp_path / "entry.npz")
        for i, name in enumerate([base + ".corrupt", base + ".corrupt.1",
                                  base + ".corrupt.2"]):
            with open(name, "w") as fh:
                fh.write("evidence")
            os.utime(name, (100 + i, 100 + i))
        other = str(tmp_path / "other.npz.corrupt")
        with open(other, "w") as fh:
            fh.write("evidence")
        WorkloadTraceCache(str(tmp_path), memory=False)  # GC runs on open
        assert sorted(os.listdir(str(tmp_path))) == [
            "entry.npz.corrupt.2", "other.npz.corrupt"]

    def test_gc_returns_removed_count(self, tmp_path):
        from repro.trace.cache import gc_quarantined
        base = str(tmp_path / "entry.npz")
        for i in range(3):
            name = base + (".corrupt" if i == 0 else f".corrupt.{i}")
            with open(name, "w") as fh:
                fh.write("x")
            os.utime(name, (100 + i, 100 + i))
        assert gc_quarantined(str(tmp_path)) == 2
        assert gc_quarantined(str(tmp_path)) == 0
        assert gc_quarantined(str(tmp_path / "missing")) == 0
