"""Unit tests for word/block address arithmetic."""

import pytest

from repro.errors import ConfigError
from repro.mem.addresses import (
    BlockMap,
    CACHE_BLOCK_BYTES,
    PAPER_BLOCK_SIZES,
    VSM_BLOCK_BYTES,
    bytes_to_words,
    is_power_of_two,
    words_to_bytes,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(1 << k) for k in range(12))

    @pytest.mark.parametrize("n", [0, -1, 3, 6, 12, 1000])
    def test_non_powers(self, n):
        assert not is_power_of_two(n)


class TestBlockMap:
    def test_words_per_block(self):
        assert BlockMap(4).words_per_block == 1
        assert BlockMap(64).words_per_block == 16
        assert BlockMap(1024).words_per_block == 256

    def test_block_of(self):
        bm = BlockMap(16)  # 4 words per block
        assert bm.block_of(0) == 0
        assert bm.block_of(3) == 0
        assert bm.block_of(4) == 1
        assert bm.block_of(1023) == 255

    def test_word_offset(self):
        bm = BlockMap(16)
        assert bm.word_offset(0) == 0
        assert bm.word_offset(5) == 1
        assert bm.word_offset(7) == 3

    def test_base_word_and_words_of(self):
        bm = BlockMap(16)
        assert bm.base_word(3) == 12
        assert list(bm.words_of(3)) == [12, 13, 14, 15]

    def test_roundtrip(self):
        bm = BlockMap(32)
        for w in (0, 1, 7, 8, 100, 12345):
            assert bm.base_word(bm.block_of(w)) + bm.word_offset(w) == w

    def test_same_block(self):
        bm = BlockMap(8)
        assert bm.same_block(0, 1)
        assert not bm.same_block(1, 2)

    def test_contains(self):
        bm = BlockMap(8)
        assert bm.contains(1, 2) and bm.contains(1, 3)
        assert not bm.contains(1, 4)

    def test_word_block_is_identity(self):
        bm = BlockMap(4)
        assert bm.block_of(17) == 17
        assert bm.word_offset(17) == 0

    @pytest.mark.parametrize("bad", [0, 2, 3, 6, 12, -8])
    def test_invalid_sizes_rejected(self, bad):
        with pytest.raises(ConfigError):
            BlockMap(bad)

    def test_frozen(self):
        bm = BlockMap(8)
        with pytest.raises(Exception):
            bm.block_bytes = 16


class TestConversions:
    def test_bytes_to_words_rounds_up(self):
        assert bytes_to_words(1) == 1
        assert bytes_to_words(4) == 1
        assert bytes_to_words(5) == 2
        assert bytes_to_words(36) == 9

    def test_bytes_to_words_strict(self):
        assert bytes_to_words(8, round_up=False) == 2
        with pytest.raises(ConfigError):
            bytes_to_words(9, round_up=False)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            bytes_to_words(-1)
        with pytest.raises(ConfigError):
            words_to_bytes(-1)

    def test_words_to_bytes(self):
        assert words_to_bytes(9) == 36


class TestPaperConstants:
    def test_sweep_range(self):
        assert PAPER_BLOCK_SIZES[0] == 4
        assert PAPER_BLOCK_SIZES[-1] == 1024
        assert all(is_power_of_two(b) for b in PAPER_BLOCK_SIZES)

    def test_figure6_sizes(self):
        assert CACHE_BLOCK_BYTES == 64
        assert VSM_BLOCK_BYTES == 1024
