"""Unit tests for TraceBuilder."""

import pytest

from repro.errors import TraceError
from repro.trace import TraceBuilder
from repro.trace.events import ACQUIRE, LOAD, RELEASE, STORE


class TestBuilder:
    def test_basic_sequence(self):
        t = TraceBuilder(2).store(0, 1).load(1, 1).build("t")
        assert t.events == [(0, STORE, 1), (1, LOAD, 1)]
        assert t.name == "t"

    def test_sync_events(self):
        t = TraceBuilder(1).acquire(0, 8).release(0, 8).build()
        assert t.events == [(0, ACQUIRE, 8), (0, RELEASE, 8)]

    def test_bulk_loads_stores(self):
        t = TraceBuilder(1).loads(0, [0, 1]).stores(0, [2, 3]).build()
        assert t.events == [(0, LOAD, 0), (0, LOAD, 1),
                            (0, STORE, 2), (0, STORE, 3)]

    def test_critical_section(self):
        t = (TraceBuilder(1)
             .critical_section(0, 100, lambda b: b.store(0, 5))
             .build())
        assert t.events == [(0, ACQUIRE, 100), (0, STORE, 5),
                            (0, RELEASE, 100)]

    def test_extend_raw_events(self):
        t = TraceBuilder(2).extend([(0, LOAD, 1), (1, STORE, 2)]).build()
        assert len(t) == 2

    def test_len(self):
        b = TraceBuilder(1).load(0, 0)
        assert len(b) == 1

    def test_out_of_range_proc_rejected(self):
        with pytest.raises(TraceError):
            TraceBuilder(2).load(2, 0)

    def test_zero_procs_rejected(self):
        with pytest.raises(TraceError):
            TraceBuilder(0)

    def test_builder_is_chainable(self):
        b = TraceBuilder(2)
        assert b.load(0, 0) is b
        assert b.store(1, 0) is b
        assert b.acquire(0, 4) is b
        assert b.release(0, 4) is b

    def test_build_meta(self):
        t = TraceBuilder(1).load(0, 0).build("n", meta={"k": "v"})
        assert t.meta == {"k": "v"}

    def test_build_validates(self):
        # builder validates on emit, so build always succeeds on its output
        t = TraceBuilder(3).load(2, 7).build()
        assert t.num_procs == 3
