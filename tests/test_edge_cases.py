"""Edge-case battery: degenerate inputs through every public entry point.

Empty traces, sync-only traces, single events, single processors, large
processor counts and extreme block sizes must all flow through the
classifiers, protocols and analyses without special-casing by callers.
"""

import pytest

from repro.analysis.attribution import attribute_misses
from repro.analysis.prefetch import prefetch_analysis
from repro.analysis.sweep import sweep_block_sizes
from repro.classify import (
    DuboisClassifier,
    classify,
    compare_classifications,
)
from repro.mem import BlockMap
from repro.protocols import (
    ALL_PROTOCOLS,
    FiniteOTFProtocol,
    SectorProtocol,
    run_protocol,
    run_protocols,
)
from repro.protocols.traffic import estimate_traffic
from repro.trace import Trace, TraceBuilder
from repro.trace.stats import benchmark_stats
from repro.trace.validate import check_races


EMPTY = Trace([], num_procs=2, name="empty")
SYNC_ONLY = (TraceBuilder(2).acquire(0, 100).release(0, 100)
             .acquire(1, 100).release(1, 100).build("sync-only"))
ONE_EVENT = TraceBuilder(1).load(0, 0).build("one")


class TestEmptyTrace:
    def test_classify(self):
        bd = classify(EMPTY, 64)
        assert bd.total == 0 and bd.data_refs == 0
        assert bd.miss_rate == 0.0

    def test_compare(self):
        c = compare_classifications(EMPTY, 64)
        assert c.ours.total == c.eggers.total == c.torrellas.total == 0

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_all_protocols(self, name):
        r = run_protocol(name, EMPTY, 64)
        assert r.misses == 0
        assert r.miss_rate == 0.0
        assert estimate_traffic(r).total_bytes == 0

    def test_sweep_and_prefetch(self):
        sw = sweep_block_sizes(EMPTY, [4, 1024])
        assert all(bd.total == 0 for bd in sw.breakdowns)
        pa = prefetch_analysis(EMPTY, [64])
        assert pa.floors[64].baseline == 0.0

    def test_race_check(self):
        assert check_races(EMPTY).is_race_free

    def test_stats(self):
        st = benchmark_stats(EMPTY)
        assert st.data_refs == 0


class TestSyncOnlyTrace:
    def test_classify_ignores_sync(self):
        assert classify(SYNC_ONLY, 64).data_refs == 0

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_protocols_handle_pure_sync(self, name):
        r = run_protocol(name, SYNC_ONLY, 64)
        assert r.misses == 0


class TestSingleEvent:
    def test_one_load_is_one_pc_miss(self):
        bd = classify(ONE_EVENT, 64)
        assert bd.as_dict() == {"PC": 1, "CTS": 0, "CFS": 0, "PTS": 0,
                                "PFS": 0, "data_refs": 1}

    @pytest.mark.parametrize("name", ALL_PROTOCOLS)
    def test_protocols(self, name):
        assert run_protocol(name, ONE_EVENT, 64).misses == 1


class TestExtremes:
    def test_many_processors(self):
        # Bitmask state must scale past machine word sizes.
        nproc = 70
        b = TraceBuilder(nproc)
        for p in range(nproc):
            b.load(p, 0)
        b.store(0, 0)
        for p in range(nproc):
            b.load(p, 0)
        t = b.build()
        bd = classify(t, 4)
        assert bd.cold == nproc
        assert bd.pts == nproc - 1
        r = run_protocol("OTF", t, 4)
        assert r.breakdown.as_dict() == bd.as_dict()

    def test_huge_addresses(self):
        addr = 2**48
        t = TraceBuilder(2).store(0, addr).load(1, addr).build()
        bd = classify(t, 1024)
        assert bd.total == 2

    def test_minimum_and_maximum_paper_block_sizes(self, random_trace):
        for bb in (4, 1024):
            bd = classify(random_trace, bb)
            assert bd.total > 0

    def test_giant_block_size(self, random_trace):
        # One block covers the whole address space.
        bd = classify(random_trace, 1 << 20)
        assert bd.cold <= random_trace.num_procs

    def test_single_processor_through_everything(self):
        t = TraceBuilder(1).stores(0, range(32)).loads(0, range(32)).build()
        for name in ALL_PROTOCOLS:
            r = run_protocol(name, t, 16)
            assert r.misses == 8, name
            assert r.breakdown.pc == 8, name

    def test_finite_cache_capacity_one(self):
        t = TraceBuilder(1).loads(0, [0, 16, 32, 0]).build()
        r = FiniteOTFProtocol(1, BlockMap(16), 1).run(t)
        assert r.misses == 4

    def test_sector_on_empty(self):
        r = SectorProtocol(2, BlockMap(64), 16).run(EMPTY)
        assert r.misses == 0

    def test_attribution_empty_trace(self):
        result = attribute_misses(EMPTY, 64, regions=[("a", 0, 4)])
        assert result.by_region == {}


class TestRepeatedRuns:
    def test_protocol_instances_are_single_use_by_design(self):
        """A protocol's tracker finishes on run(); a fresh instance is
        needed per run (guarded by the tracker)."""
        from repro.errors import ProtocolError
        from repro.protocols import OTFProtocol
        p = OTFProtocol(1, BlockMap(8))
        p.run(ONE_EVENT)
        with pytest.raises(ProtocolError):
            p.run(ONE_EVENT)

    def test_run_protocols_uses_fresh_instances(self, random_trace):
        a = run_protocols(random_trace, 16, ["OTF"])
        b = run_protocols(random_trace, 16, ["OTF"])
        assert a["OTF"].misses == b["OTF"].misses
