"""Multi-host transport suite: framing, handshakes, host loss, equivalence.

Covers the acceptance criteria of the fault-tolerant multi-host layer:

* a loopback distributed sweep over two TCP worker hosts produces
  results bit-identical to a single-host serial run, for protocol,
  classifier and finite cells, sharded and unsharded, vectorized and
  interpreted;
* killing a remote host mid-sweep reassigns its cells to the survivors
  and the sweep still converges bit-identically;
* a handshake mismatch (wrong release, wrong kernel mode) is refused
  with a structured :class:`~repro.errors.HandshakeError` naming both
  sides' values;
* torn frames — a reply channel dying mid-message — are classified as
  endpoint loss (never a supervisor crash), locally and over TCP;
* when every remote host is dead and there are no local workers, the
  sweep degrades to serial in-process execution instead of hanging.

Remote hosts here are real ``repro.runtime.remote_worker`` subprocesses
listening on ephemeral loopback ports; tests skip if the sandbox forbids
loopback sockets.
"""

import os
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ConfigError, HandshakeError
from repro.runtime.retry import RetryPolicy
from repro.runtime.supervisor import Supervisor
from repro.runtime.transport import (
    EndpointLostError,
    TcpTransport,
    WorkerConfig,
    _ForkEndpoint,
    handshake_spec,
    parse_hosts,
    recv_frame,
    send_frame,
)

WORKLOAD = "MATMUL24"

#: Cells covering every remotable kind: classifier, compare, protocol
#: (delayed and on-the-fly) and a set-associative finite cache.
CELLS = [
    ("classify", 64, "dubois"),
    ("classify", 32, "eggers"),
    ("compare", 32, None),
    ("protocol", 64, "SD"),
    ("protocol", 32, "OTF"),
    ("finite", 16, "c256w4"),
]


def _loopback_available() -> bool:
    try:
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.bind(("127.0.0.1", 0))
        s.close()
        return True
    except OSError:
        return False


pytestmark = pytest.mark.skipif(
    not _loopback_available(),
    reason="loopback sockets unavailable in this environment")


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("trace-cache"))


def _start_runner(cache_dir, *extra):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.runtime.remote_worker",
         "--listen", "127.0.0.1:0", "--slots", "4",
         "--trace-cache", cache_dir, *extra],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        start_new_session=True)
    line = proc.stdout.readline()
    m = re.search(r"listening on ([\d.]+):(\d+)", line or "")
    assert m, f"runner failed to start: {line!r}"
    return proc, f"{m.group(1)}:{m.group(2)}"


def _kill_runner(proc):
    try:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass
    proc.wait(timeout=10)
    if proc.stdout is not None:
        proc.stdout.close()


@pytest.fixture(scope="module")
def runners(cache_dir):
    """Two live remote worker runner processes (module-shared: their
    per-(workload, kernel) engine caches amortize trace generation)."""
    started = [_start_runner(cache_dir) for _ in range(2)]
    yield [addr for _, addr in started]
    for proc, _ in started:
        _kill_runner(proc)


def _engine(cache_dir, **kwargs):
    from repro.analysis.engine import SweepEngine

    return SweepEngine.for_workload(WORKLOAD, cache_dir=cache_dir, **kwargs)


def _encode(results):
    from repro.runtime.checkpoint import encode_result
    import json

    return json.dumps([encode_result(r) for r in results],
                      sort_keys=True).encode()


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
class TestFraming:
    def _pair(self):
        return socket.socketpair()

    def test_round_trip(self):
        a, b = self._pair()
        try:
            send_frame(a, {"t": "hello", "nested": {"x": [1, 2, 3]}})
            assert recv_frame(b) == {"t": "hello", "nested": {"x": [1, 2, 3]}}
        finally:
            a.close()
            b.close()

    def test_eof_between_frames_is_clean_loss(self):
        a, b = self._pair()
        a.close()
        try:
            with pytest.raises(EndpointLostError) as exc_info:
                recv_frame(b)
            assert not exc_info.value.garbled
        finally:
            b.close()

    def test_torn_frame_is_garbled(self):
        """A frame whose sender died mid-message: the length prefix
        promises more bytes than ever arrive."""
        a, b = self._pair()
        try:
            a.sendall(struct.pack(">I", 100) + b'{"t": "re')
            a.close()
            with pytest.raises(EndpointLostError) as exc_info:
                recv_frame(b)
            assert exc_info.value.garbled
        finally:
            b.close()

    def test_torn_header_is_garbled(self):
        a, b = self._pair()
        try:
            a.sendall(b"\x00\x00")  # half a length prefix
            a.close()
            with pytest.raises(EndpointLostError) as exc_info:
                recv_frame(b)
            assert exc_info.value.garbled
        finally:
            b.close()

    def test_garbage_payload_is_garbled(self):
        a, b = self._pair()
        try:
            payload = b"\xff\xfenot json"
            a.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(EndpointLostError) as exc_info:
                recv_frame(b)
            assert exc_info.value.garbled
        finally:
            a.close()
            b.close()

    def test_oversized_frame_is_garbled(self):
        a, b = self._pair()
        try:
            a.sendall(struct.pack(">I", 1 << 31))
            with pytest.raises(EndpointLostError) as exc_info:
                recv_frame(b)
            assert exc_info.value.garbled
        finally:
            a.close()
            b.close()

    def test_non_dict_frame_is_garbled(self):
        a, b = self._pair()
        try:
            payload = b'[1, 2, 3]'
            a.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(EndpointLostError) as exc_info:
                recv_frame(b)
            assert exc_info.value.garbled
        finally:
            a.close()
            b.close()


class TestForkEndpointTornFrames:
    """Satellite of the torn-frame contract: the *local* reply pipe too.

    The supervisor once caught only ``(EOFError, OSError)`` around
    ``conn.recv()`` — a torn pickle frame (worker killed mid-``send``)
    raised ``UnpicklingError`` and crashed the whole sweep.  The fork
    endpoint now classifies both shapes as endpoint loss."""

    def test_closed_pipe_is_clean_loss(self):
        import multiprocessing

        a, b = multiprocessing.Pipe()
        a.close()

        class _Stub:
            conn = b

        with pytest.raises(EndpointLostError) as exc_info:
            _ForkEndpoint.recv(_Stub())
        assert not exc_info.value.garbled
        b.close()

    def test_torn_pickle_is_garbled_loss(self):
        import multiprocessing

        a, b = multiprocessing.Pipe()
        a.send_bytes(b"\x80\x04not really a pickle")

        class _Stub:
            conn = b

        with pytest.raises(EndpointLostError) as exc_info:
            _ForkEndpoint.recv(_Stub())
        assert exc_info.value.garbled
        a.close()
        b.close()


# ----------------------------------------------------------------------
# host specs
# ----------------------------------------------------------------------
class TestParseHosts:
    def test_parses_comma_list(self):
        assert parse_hosts("a:1, b:2 ,c:65535") == \
            [("a", 1), ("b", 2), ("c", 65535)]

    def test_duplicates_mean_two_connections(self):
        assert parse_hosts("h:9,h:9") == [("h", 9), ("h", 9)]

    @pytest.mark.parametrize("bad", ["", "justahost", "h:", ":7",
                                     "h:seven", "h:0", "h:70000"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            parse_hosts(bad)

    def test_listen_spec(self):
        from repro.runtime.remote_worker import parse_listen

        assert parse_listen("0.0.0.0:0") == ("0.0.0.0", 0)
        with pytest.raises(ConfigError):
            parse_listen("nocolon")


# ----------------------------------------------------------------------
# handshake refusal
# ----------------------------------------------------------------------
class TestHandshake:
    def _spec(self, cache_dir, **overrides):
        from repro.kernels import effective_kernel_mode

        engine = _engine(cache_dir)
        spec = handshake_spec(trace_key=engine.trace_key,
                              kernel=effective_kernel_mode("auto"),
                              workload=WORKLOAD)
        spec.update(overrides)
        return spec

    def test_wrong_release_refused_naming_both_sides(self, cache_dir,
                                                     runners):
        import repro

        tr = TcpTransport(parse_hosts(runners[0]),
                          self._spec(cache_dir, release="0.0.0-stale"))
        tr.open(WorkerConfig(lambda t: t, fault_plan=None,
                             rlimit_bytes=None, heartbeat_interval=None))
        with pytest.raises(HandshakeError) as exc_info:
            tr.start(1)
        err = exc_info.value
        assert err.host == runners[0]
        assert "release" in str(err)
        # Structured: both sides' values, not just a verdict.
        assert err.local.get("release") == "0.0.0-stale"
        assert err.remote.get("release") == repro.__version__
        assert "0.0.0-stale" in str(err)
        assert repro.__version__ in str(err)

    def test_wrong_trace_key_refused(self, cache_dir, runners):
        tr = TcpTransport(parse_hosts(runners[0]),
                          self._spec(cache_dir, trace_key="tampered"))
        tr.open(WorkerConfig(lambda t: t, fault_plan=None,
                             rlimit_bytes=None, heartbeat_interval=None))
        with pytest.raises(HandshakeError, match="trace identity"):
            tr.start(1)

    def test_kernel_pin_mismatch_refused(self, cache_dir):
        """A runner pinned to --kernel interpreted refuses a client that
        requires the vectorized path, naming both modes."""
        pytest.importorskip("numpy")
        proc, addr = _start_runner(cache_dir, "--kernel", "interpreted")
        try:
            tr = TcpTransport(parse_hosts(addr),
                              self._spec(cache_dir, kernel="vectorized"))
            tr.open(WorkerConfig(lambda t: t, fault_plan=None,
                                 rlimit_bytes=None,
                                 heartbeat_interval=None))
            with pytest.raises(HandshakeError) as exc_info:
                tr.start(1)
            msg = str(exc_info.value)
            assert "kernel" in msg
            assert "interpreted" in msg and "vectorized" in msg
        finally:
            _kill_runner(proc)

    def test_engine_surfaces_refusal(self, cache_dir, runners,
                                     monkeypatch):
        """The refusal crosses the engine API too (fail loud at start,
        not quietly degraded)."""
        import repro

        monkeypatch.setattr(repro, "__version__", "9.9.9-phantom")
        engine = _engine(cache_dir, hosts=runners[0], timeout=10.0)
        with pytest.raises(HandshakeError, match="release"):
            engine.run_grid(CELLS[:2])


# ----------------------------------------------------------------------
# loopback equivalence (the tentpole acceptance)
# ----------------------------------------------------------------------
class TestLoopbackEquivalence:
    @pytest.fixture(scope="class")
    def baseline(self, cache_dir):
        return {
            kernel: _engine(cache_dir, kernel=kernel).run_grid(CELLS)
            for kernel in ("auto", "interpreted")
        }

    @pytest.mark.parametrize("kernel", ["auto", "interpreted"])
    def test_two_host_sweep_bit_identical(self, cache_dir, runners,
                                          baseline, kernel):
        """jobs=1 + two hosts: every cell crosses the wire; results and
        their canonical encodings match the serial run exactly."""
        engine = _engine(cache_dir, jobs=1, timeout=60.0,
                         hosts=",".join(runners), kernel=kernel)
        got = engine.run_grid(CELLS)
        assert got == baseline[kernel]
        assert _encode(got) == _encode(baseline[kernel])

    def test_sharded_two_host_sweep_bit_identical(self, cache_dir,
                                                  runners, baseline):
        """Shard subtasks carry plan digests; the hosts rebuild each
        plan from meta and verify the digest before running."""
        engine = _engine(cache_dir, jobs=1, shards=2, timeout=60.0,
                         hosts=",".join(runners))
        got = engine.run_grid(CELLS)
        assert got == baseline["auto"]
        assert _encode(got) == _encode(baseline["auto"])

    def test_mixed_local_and_remote_bit_identical(self, cache_dir,
                                                  runners, baseline):
        engine = _engine(cache_dir, jobs=2, timeout=60.0,
                         hosts=runners[0])
        got = engine.run_grid(CELLS)
        assert got == baseline["auto"]


# ----------------------------------------------------------------------
# host loss
# ----------------------------------------------------------------------
class TestHostLoss:
    def test_dead_host_at_start_falls_back_serial(self, cache_dir):
        """No runner ever listened: the host ladder drops it after its
        connect budget and the sweep completes serially in-process."""
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.bind(("127.0.0.1", 0))
        port = s.getsockname()[1]
        s.close()  # nobody listening on this port now

        baseline = _engine(cache_dir).run_grid(CELLS[:3])
        engine = _engine(cache_dir, jobs=1, timeout=10.0,
                         hosts=f"127.0.0.1:{port}")
        got = engine.run_grid(CELLS[:3])
        assert got == baseline

    def test_kill_one_host_mid_sweep_converges(self, cache_dir):
        """SIGKILL one of two hosts while it holds cells: its work is
        reassigned to the survivor and the merged results stay
        bit-identical (the ISSUE's chaos acceptance, deterministic
        flavour: the interpreted kernel makes the sweep long enough
        that the kill always lands mid-flight)."""
        baseline = _engine(cache_dir,
                           kernel="interpreted").run_grid(CELLS)
        p1, a1 = _start_runner(cache_dir)
        p2, a2 = _start_runner(cache_dir)
        try:
            engine = _engine(cache_dir, jobs=1, timeout=5.0,
                             hosts=f"{a1},{a2}", kernel="interpreted")
            killed = threading.Event()

            def _has_serving_child(pid):
                # The runner forks one serving child per accepted
                # connection; scan /proc for a child of the victim.
                for entry in os.listdir("/proc"):
                    if not entry.isdigit():
                        continue
                    try:
                        with open(f"/proc/{entry}/stat") as fh:
                            if int(fh.read().split()[3]) == pid:
                                return True
                    except (OSError, ValueError, IndexError):
                        continue
                return False

            def _kill_when_busy():
                # Fire once the victim accepted work (its serving child
                # exists), not on a wall-clock guess.
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if _has_serving_child(p2.pid):
                        break
                    time.sleep(0.02)
                _kill_runner(p2)
                killed.set()

            killer = threading.Thread(target=_kill_when_busy, daemon=True)
            killer.start()
            got = engine.run_grid(CELLS)
            killer.join(timeout=35.0)
            assert killed.is_set(), "victim host was never killed"
            assert got == baseline
            assert _encode(got) == _encode(baseline)
        finally:
            for p in (p1, p2):
                _kill_runner(p)

    def test_torn_tcp_reply_reassigned(self, cache_dir):
        """A host that dies mid-reply (length prefix sent, payload never
        finished) is a garbled endpoint loss: the supervisor reassigns
        the cell instead of crashing or waiting forever."""
        from repro.classify.breakdown import DuboisBreakdown
        from repro.runtime.checkpoint import encode_result

        bd = DuboisBreakdown(pc=1, cts=2, cfs=3, pts=4, pfs=5,
                             data_refs=60)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        port = listener.getsockname()[1]
        first_conn = threading.Event()

        def fake_runner():
            served = 0
            while served < 2:
                conn, _ = listener.accept()
                served += 1
                hello = recv_frame(conn)
                assert hello["t"] == "hello"
                send_frame(conn, {"t": "welcome", "pid": 4242,
                                  "release": hello["release"]})
                if served == 1:
                    first_conn.set()
                    msg = recv_frame(conn)  # the first task
                    # Torn reply: promise 64 KiB, deliver 10 bytes, die.
                    conn.sendall(struct.pack(">I", 65536) + b"0123456789")
                    conn.close()
                    continue
                while True:
                    try:
                        msg = recv_frame(conn)
                    except EndpointLostError:
                        break
                    if msg["t"] == "stop":
                        break
                    if msg["t"] != "run":
                        continue
                    send_frame(conn, {
                        "t": "reply", "idx": msg["idx"], "ok": True,
                        "payload": encode_result(bd), "records": None})
                conn.close()

        server = threading.Thread(target=fake_runner, daemon=True)
        server.start()
        try:
            spec = {"proto": 1, "release": "x", "journal_v": 0,
                    "kernel": "interpreted", "trace_key": "k",
                    "workload": "w"}
            tr = TcpTransport(
                [("127.0.0.1", port)], spec,
                reconnect=RetryPolicy(max_attempts=4, base_delay=0.01,
                                      max_delay=0.05))
            sup = Supervisor(lambda t: bd, jobs=1, transports=[tr],
                             retry=RetryPolicy(max_attempts=3,
                                               base_delay=0.01,
                                               max_delay=0.05),
                             timeout=10.0)
            results = sup.run(["cell-a", "cell-b"])
            assert results == [bd, bd]
            assert first_conn.is_set()
        finally:
            listener.close()
        server.join(timeout=10.0)


# ----------------------------------------------------------------------
# checkpoint interop
# ----------------------------------------------------------------------
class TestDistributedCheckpoints:
    def test_remote_cells_journal_and_resume_locally(self, cache_dir,
                                                     runners, tmp_path):
        """Cells computed on remote hosts land in the same checkpoint
        journal --resume reads; a resumed local run re-runs nothing."""
        ckpt = str(tmp_path / "ckpt")
        engine = _engine(cache_dir, jobs=1, timeout=60.0,
                         hosts=",".join(runners), checkpoint_dir=ckpt)
        first = engine.run_grid(CELLS[:4])

        resumed = _engine(cache_dir, checkpoint_dir=ckpt)
        ran = []
        pre = resumed.precompute
        original = pre.run_cell
        pre.run_cell = lambda c: (ran.append(c), original(c))[1]
        assert resumed.run_grid(CELLS[:4]) == first
        assert ran == []
