"""Unit tests for per-data-structure miss attribution."""

import pytest

from repro.analysis.attribution import (
    RegionTable,
    UNMAPPED,
    attribute_misses,
)
from repro.classify import classify
from repro.errors import ConfigError
from repro.trace import TraceBuilder


class TestRegionTable:
    def test_lookup(self):
        table = RegionTable([("a", 0, 4), ("b", 10, 2)])
        assert table.name_of(0) == "a"
        assert table.name_of(3) == "a"
        assert table.name_of(4) == UNMAPPED
        assert table.name_of(10) == "b"
        assert table.name_of(12) == UNMAPPED

    def test_sorted_regardless_of_input_order(self):
        table = RegionTable([("b", 10, 2), ("a", 0, 4)])
        assert table.names == ["a", "b"]

    def test_overlap_rejected(self):
        with pytest.raises(ConfigError):
            RegionTable([("a", 0, 4), ("b", 3, 4)])

    def test_empty_region_rejected(self):
        with pytest.raises(ConfigError):
            RegionTable([("a", 0, 0)])

    def test_from_trace_requires_meta(self):
        t = TraceBuilder(1).load(0, 0).build()
        with pytest.raises(ConfigError):
            RegionTable.from_trace(t)


class TestAttribution:
    def test_counts_sum_to_classifier_totals(self, mp3d_trace):
        result = attribute_misses(mp3d_trace, 32)
        total = sum(bd.total for bd in result.by_region.values())
        assert total == classify(mp3d_trace, 32).total

    def test_all_misses_mapped_for_workloads(self, mp3d_trace):
        """Workload generators allocate everything through the allocator,
        so no miss should be unattributable."""
        result = attribute_misses(mp3d_trace, 32)
        assert UNMAPPED not in result.by_region

    def test_explicit_regions(self):
        t = (TraceBuilder(2)
             .store(0, 0).store(1, 1)   # false sharing in 'hot'
             .store(0, 0).store(1, 1)
             .load(0, 8)                # private in 'cold'
             .build())
        result = attribute_misses(t, 8, regions=[("hot", 0, 2),
                                                 ("cold", 8, 1)])
        assert result.by_region["hot"].pfs > 0
        assert result.by_region["cold"].pfs == 0
        assert result.by_region["cold"].pc == 1

    def test_top_false_sharers_ranked(self, mp3d_trace):
        result = attribute_misses(mp3d_trace, 64)
        top = result.top_false_sharers()
        assert top == sorted(top, key=lambda kv: -kv[1])
        assert all(count > 0 for _, count in top)

    def test_mp3d_false_sharing_lands_on_particles_and_cells(self, mp3d_trace):
        """The paper's section 6 attribution: 'False sharing misses are
        due to modifications of particles and of space cells.'"""
        result = attribute_misses(mp3d_trace, 64)
        pfs_by_family = {}
        for name, bd in result.by_region.items():
            family = name.split(".")[1].split("[")[0] if "." in name else name
            pfs_by_family[family] = pfs_by_family.get(family, 0) + bd.pfs
        data_pfs = pfs_by_family.get("particle", 0) + pfs_by_family.get("cell", 0)
        total_pfs = sum(pfs_by_family.values())
        assert data_pfs > 0.5 * total_pfs

    def test_format_renders_table(self, mp3d_trace):
        text = attribute_misses(mp3d_trace, 32).format()
        assert "region" in text and "PFS" in text

    def test_unmapped_bucket_used_for_unknown_words(self):
        t = TraceBuilder(1).load(0, 999).build()
        result = attribute_misses(t, 8, regions=[("a", 0, 4)])
        assert result.by_region[UNMAPPED].pc == 1
