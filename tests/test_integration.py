"""Integration tests: whole-pipeline checks across workloads, classifiers

and protocols — the paper's claims verified end to end on generated
traces."""

import pytest

from repro.analysis.invariants import (
    check_block_size_monotonicity,
    check_eggers_tsm_subset_torrellas,
    check_min_is_essential,
    check_protocol_ordering,
)
from repro.analysis.sweep import sweep_block_sizes
from repro.classify import DuboisClassifier, compare_classifications
from repro.mem import BlockMap
from repro.protocols import run_protocol, run_protocols
from repro.trace.validate import check_races

SIZES = (4, 16, 64, 256)


class TestWorkloadsAreValidInputs:
    def test_all_generated_traces_race_free(self, workload_traces):
        for name, trace in workload_traces.items():
            report = check_races(trace)
            assert report.is_race_free, f"{name}: {report.describe()}"


class TestClassifierInvariantsOnWorkloads:
    def test_block_size_monotonicity(self, workload_traces):
        for name, trace in workload_traces.items():
            sweep = sweep_block_sizes(trace, SIZES)
            assert check_block_size_monotonicity(sweep) == [], name

    def test_three_way_totals_agree(self, workload_traces):
        for name, trace in workload_traces.items():
            for bb in (16, 64):
                c = compare_classifications(trace, bb)
                assert c.ours.total == c.eggers.total == c.torrellas.total, \
                    (name, bb)

    def test_eggers_torrellas_per_miss_implication(self, workload_traces):
        for name, trace in workload_traces.items():
            assert check_eggers_tsm_subset_torrellas(trace, 32) == [], name


class TestProtocolsOnWorkloads:
    def test_otf_matches_appendix_a_everywhere(self, workload_traces):
        for name, trace in workload_traces.items():
            for bb in (16, 64):
                bd = DuboisClassifier.classify_trace(trace, BlockMap(bb))
                r = run_protocol("OTF", trace, bb)
                assert r.breakdown.as_dict() == bd.as_dict(), (name, bb)

    def test_min_achieves_essential_on_paper_workloads(self, workload_traces):
        """On the benchmark generators MIN hits the essential count
        exactly (the fuzzed corner case where it undercuts does not arise
        in these structured programs at these block sizes)."""
        for name, trace in workload_traces.items():
            for bb in (16, 64):
                bd = DuboisClassifier.classify_trace(trace, BlockMap(bb))
                r = run_protocol("MIN", trace, bb)
                assert r.misses <= bd.essential, (name, bb)
                gap = bd.essential - r.misses
                assert gap <= 0.01 * bd.essential + 2, (name, bb, gap)

    def test_protocol_ordering_on_synchronized_traces(self, workload_traces):
        for name, trace in workload_traces.items():
            for bb in (16, 64):
                res = run_protocols(trace, bb)
                violations = check_protocol_ordering(res, synchronized=True)
                assert violations == [], (name, bb, violations)
                assert check_min_is_essential(trace, res["MIN"]) == [], name

    def test_delayed_protocols_keep_essential_components(self, workload_traces):
        """Paper section 7: the essential (TRUE+COLD) components of OTF,
        RD, SD and SRD differ only marginally — the protocols differ in
        the useless misses they eliminate."""
        for name, trace in workload_traces.items():
            res = run_protocols(trace, 64, ["OTF", "RD", "SD", "SRD"])
            essentials = [r.breakdown.essential for r in res.values()]
            assert max(essentials) - min(essentials) \
                <= 0.15 * max(essentials) + 5, (name, essentials)


class TestFigure6Shapes:
    """The headline protocol-comparison shapes at cache (64B) and VSM
    (1024B) block sizes, on one representative workload each."""

    def test_cache_blocks_protocols_near_essential(self, jacobi_trace):
        res = run_protocols(jacobi_trace, 64)
        mn, wbwi, otf = (res[k].misses for k in ("MIN", "WBWI", "OTF"))
        assert wbwi <= otf
        assert wbwi - mn <= 0.35 * mn  # ownership cost small at B=64

    def test_vsm_blocks_show_ownership_gap(self, jacobi_trace):
        res = run_protocols(jacobi_trace, 1024)
        mn, wbwi, rd = (res[k].misses for k in ("MIN", "WBWI", "RD"))
        assert wbwi > 2 * mn, "ownership cost large at B=1024"
        assert abs(rd - wbwi) <= 0.25 * wbwi, "RD tracks WBWI (paper 7.0)"

    def test_srd_best_delayed_protocol_at_vsm(self, jacobi_trace):
        res = run_protocols(jacobi_trace, 1024)
        assert res["SRD"].misses <= res["RD"].misses
        assert res["SRD"].misses <= res["SD"].misses
        assert res["SRD"].misses >= res["MIN"].misses

    def test_max_blows_up_at_vsm_blocks(self, lu_trace):
        res = run_protocols(lu_trace, 1024, ["OTF", "MAX"])
        assert res["MAX"].misses > res["OTF"].misses


class TestEndToEndDeterminism:
    def test_full_pipeline_reproducible(self):
        from repro.workloads import MP3D
        wl = lambda: MP3D(24, num_cells=8, time_steps=2, num_procs=4, seed=5)
        t1, t2 = wl().generate(), wl().generate()
        assert t1.events == t2.events
        r1 = run_protocols(t1, 32)
        r2 = run_protocols(t2, 32)
        for name in r1:
            assert r1[name].breakdown.as_dict() == r2[name].breakdown.as_dict()
