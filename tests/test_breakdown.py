"""Unit tests for breakdown/result types."""

import pytest

from repro.classify.breakdown import (
    DuboisBreakdown,
    MissClass,
    MissRecord,
    SimpleBreakdown,
)


class TestMissClass:
    def test_cold_classes(self):
        assert MissClass.PC.is_cold
        assert MissClass.CTS.is_cold
        assert MissClass.CFS.is_cold
        assert not MissClass.PTS.is_cold
        assert not MissClass.PFS.is_cold

    def test_essential_classes(self):
        assert all(mc.is_essential for mc in MissClass if mc != MissClass.PFS)
        assert not MissClass.PFS.is_essential


class TestDuboisBreakdown:
    @pytest.fixture
    def bd(self):
        return DuboisBreakdown(pc=10, cts=5, cfs=3, pts=7, pfs=25,
                               data_refs=1000)

    def test_aggregates(self, bd):
        assert bd.cold == 18
        assert bd.essential == 25
        assert bd.useless == 25
        assert bd.total == 50

    def test_rates(self, bd):
        assert bd.miss_rate == pytest.approx(5.0)
        assert bd.essential_rate == pytest.approx(2.5)
        assert bd.rate(bd.pfs) == pytest.approx(2.5)

    def test_zero_refs_rate(self):
        bd = DuboisBreakdown(0, 0, 0, 0, 0, data_refs=0)
        assert bd.miss_rate == 0.0

    def test_count_by_class(self, bd):
        assert bd.count(MissClass.PC) == 10
        assert bd.count(MissClass.PFS) == 25

    def test_as_dict(self, bd):
        d = bd.as_dict()
        assert d["PTS"] == 7 and d["data_refs"] == 1000

    def test_addition(self, bd):
        total = bd + bd
        assert total.total == 100
        assert total.data_refs == 2000

    def test_describe_mentions_essential(self, bd):
        assert "essential=25" in bd.describe()

    def test_frozen(self, bd):
        with pytest.raises(Exception):
            bd.pc = 0


class TestSimpleBreakdown:
    @pytest.fixture
    def sb(self):
        return SimpleBreakdown(cold=10, true_sharing=4, false_sharing=6,
                               data_refs=200)

    def test_total(self, sb):
        assert sb.total == 20

    def test_essential_estimate(self, sb):
        assert sb.essential_estimate == 14

    def test_rates(self, sb):
        assert sb.miss_rate == pytest.approx(10.0)

    def test_as_dict(self, sb):
        assert sb.as_dict() == {"CM": 10, "TSM": 4, "FSM": 6,
                                "data_refs": 200}

    def test_describe(self, sb):
        assert "TSM=4" in sb.describe()


class TestMissRecord:
    def test_fields(self):
        r = MissRecord(proc=1, block=2, start=3, end=9, mclass=MissClass.PTS)
        assert r.proc == 1 and r.mclass is MissClass.PTS
        assert r.end > r.start
