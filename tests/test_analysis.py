"""Unit tests for the analysis package: report rendering, sweeps, tables,

figures and invariants."""

import pytest

from repro.analysis.figures import figure5, figure6
from repro.analysis.invariants import (
    check_all,
    check_block_size_monotonicity,
    check_cold_agreement_ours_eggers,
    check_eggers_tsm_subset_torrellas,
    check_min_is_essential,
    check_protocol_ordering,
    check_total_miss_agreement,
)
from repro.analysis.report import format_bars, format_stacked_bars, format_table
from repro.analysis.sweep import sweep_block_sizes, sweep_comparisons
from repro.analysis.tables import (
    TABLE1_ROWS,
    build_table1,
    build_table2,
    format_table1,
    format_table2,
)
from repro.classify import MissClass, compare_classifications
from repro.protocols import run_protocol, run_protocols
from repro.trace.synth import producer_consumer, uniform_random


@pytest.fixture(scope="module")
def trace():
    return uniform_random(4, words=128, num_events=3000, seed=21)


class TestReportRendering:
    def test_format_table_alignment(self):
        text = format_table(["name", "x"], [["a", 1], ["bb", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "----" in lines[2]
        assert lines[3].startswith("a ")

    def test_format_bars(self):
        text = format_bars({"OTF": 4.0, "MIN": 2.0}, width=8)
        assert "########" in text
        assert "####" in text

    def test_format_bars_empty(self):
        assert format_bars({}, title="t") == "t"

    def test_format_bars_zero_values(self):
        text = format_bars({"A": 0.0})
        assert "A" in text

    def test_stacked_bars_legend(self):
        text = format_stacked_bars(
            {"OTF": {"TRUE": 1.0, "COLD": 1.0, "FALSE": 2.0}})
        assert "legend" in text
        assert "T=TRUE" in text

    def test_stacked_bars_totals(self):
        text = format_stacked_bars({"X": {"A": 1.5, "B": 0.5}})
        assert "2.00%" in text


class TestSweep:
    def test_sweep_default_sizes(self, trace):
        sw = sweep_block_sizes(trace)
        assert sw.block_sizes == (4, 8, 16, 32, 64, 128, 256, 512, 1024)
        assert len(sw.breakdowns) == 9

    def test_series_lengths(self, trace):
        sw = sweep_block_sizes(trace, [4, 16])
        assert len(sw.series(MissClass.PTS)) == 2
        assert len(sw.essential_series()) == 2
        assert len(sw.total_series()) == 2

    def test_at(self, trace):
        sw = sweep_block_sizes(trace, [4, 16])
        assert sw.at(16) is sw.breakdowns[1]

    def test_format_contains_rows(self, trace):
        text = sweep_block_sizes(trace, [4, 8]).format()
        assert "PTS" in text and "essential%" in text

    def test_sweep_comparisons(self, trace):
        cmps = sweep_comparisons(trace, [8, 32])
        assert set(cmps) == {8, 32}
        assert cmps[8].block_bytes == 8


class TestTables:
    def test_table1_builder_and_render(self, trace):
        comparisons = build_table1([trace], block_sizes=(8, 64))
        assert (trace.name, 8) in comparisons
        text = format_table1(comparisons)
        for row in TABLE1_ROWS:
            assert row in text

    def test_table2_builder_and_render(self, lu_trace):
        stats = build_table2([lu_trace])
        text = format_table2(stats)
        assert "BENCHMARK" in text and "LU12" in text


class TestFigures:
    def test_figure5_panels(self, lu_trace):
        panels = figure5([lu_trace], block_sizes=[8, 32])
        panel = panels["LU12"]
        series = panel.series()
        assert set(series) == {"PC", "CTS", "CFS", "PTS", "PFS"}
        assert "LU12" in panel.format()

    def test_figure6_panels(self, trace):
        panels = figure6([trace], 16, protocols=["MIN", "OTF"])
        panel = panels[trace.name]
        assert set(panel.results) == {"MIN", "OTF"}
        assert panel.totals()["OTF"] >= panel.totals()["MIN"]
        assert "B=16" in panel.format()
        assert "ownership" in panel.format_table()

    def test_figure6_bars_shape(self, trace):
        panels = figure6([trace], 16, protocols=["OTF"])
        bars = panels[trace.name].bars()["OTF"]
        assert set(bars) == {"TRUE", "COLD", "FALSE"}


class TestInvariants:
    def test_monotonicity_holds_on_real_traces(self, trace):
        assert check_block_size_monotonicity(sweep_block_sizes(trace)) == []

    def test_monotonicity_detects_violation(self):
        from repro.analysis.sweep import SweepResult
        from repro.classify.breakdown import DuboisBreakdown
        bad = SweepResult(
            trace_name="bad", block_sizes=(4, 8),
            breakdowns=(DuboisBreakdown(1, 0, 0, 0, 0, 10),
                        DuboisBreakdown(2, 0, 0, 0, 0, 10)))
        assert check_block_size_monotonicity(bad)

    def test_min_is_essential(self, trace):
        r = run_protocol("MIN", trace, 16)
        assert check_min_is_essential(trace, r) == []

    def test_protocol_ordering_clean_trace(self):
        t = producer_consumer(4, words=16, rounds=5)
        res = run_protocols(t, 16, ["MIN", "OTF", "WBWI", "MAX"])
        assert check_protocol_ordering(res, synchronized=False) == []

    def test_classifier_invariants(self, trace):
        cmp8 = compare_classifications(trace, 8)
        assert check_eggers_tsm_subset_torrellas(trace, 8) == []
        assert check_total_miss_agreement(cmp8) == []
        assert check_cold_agreement_ours_eggers(cmp8) == []

    def test_check_all_aggregates(self, trace):
        sw = sweep_block_sizes(trace, [8, 32])
        cmps = [compare_classifications(trace, 8)]
        assert check_all(trace, sw, cmps) == []
