"""Unit tests for trace serialization (text and npz)."""

import pytest

from repro.errors import TraceFormatError
from repro.trace import TraceBuilder
from repro.trace.io import (
    cached,
    dumps_text,
    load_npz,
    load_text,
    loads_text,
    save_npz,
    save_text,
)


@pytest.fixture
def trace():
    return (TraceBuilder(3)
            .store(0, 0x10).load(1, 0x10).acquire(2, 0x100)
            .release(2, 0x100).load(2, 0x11)
            .build("roundtrip", meta={"seed": 7}))


class TestTextFormat:
    def test_roundtrip(self, trace):
        assert loads_text(dumps_text(trace)) == trace

    def test_preserves_name(self, trace):
        assert loads_text(dumps_text(trace)).name == "roundtrip"

    def test_file_roundtrip(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        save_text(trace, path)
        assert load_text(path) == trace

    def test_comments_and_blank_lines_ignored(self):
        text = ("#repro-trace-v1\nnum_procs 2\n\n"
                "# a comment\n0 LOAD 0x4  # trailing\n1 ST 8\n")
        t = loads_text(text)
        assert len(t) == 2
        assert t.events[1] == (1, 1, 8)

    def test_missing_header_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("num_procs 2\n0 LOAD 0\n")

    def test_missing_num_procs_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("#repro-trace-v1\n0 LOAD 0\n")

    def test_bad_line_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("#repro-trace-v1\nnum_procs 1\n0 LOAD\n")

    def test_bad_opcode_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("#repro-trace-v1\nnum_procs 1\n0 JUMP 0\n")

    def test_decimal_and_hex_addresses(self):
        t = loads_text("#repro-trace-v1\nnum_procs 1\n0 LOAD 10\n0 LOAD 0x10\n")
        assert [a for _, _, a in t.events] == [10, 16]


class TestNpzFormat:
    def test_roundtrip(self, trace, tmp_path):
        path = str(tmp_path / "t.npz")
        save_npz(trace, path)
        loaded = load_npz(path)
        assert loaded == trace
        assert loaded.name == trace.name
        assert loaded.meta["seed"] == 7

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a zip")
        with pytest.raises(TraceFormatError):
            load_npz(str(path))

    def test_unjsonable_meta_degraded_not_lost(self, tmp_path):
        t = TraceBuilder(1).load(0, 0).build("m", meta={"obj": object()})
        path = str(tmp_path / "m.npz")
        save_npz(t, path)
        loaded = load_npz(path)
        assert "obj" in loaded.meta  # repr'd, not dropped


class TestCached:
    def test_generates_once(self, trace, tmp_path):
        path = str(tmp_path / "cache" / "t.npz")
        calls = []

        def gen():
            calls.append(1)
            return trace

        first = cached(path, gen)
        second = cached(path, gen)
        assert first == trace and second == trace
        assert len(calls) == 1
