"""Unit tests for trace serialization (text and npz)."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.trace import Trace, TraceBuilder
from repro.trace.io import (
    cached,
    dumps_text,
    load_npz,
    load_text,
    loads_text,
    save_npz,
    save_text,
)


@pytest.fixture
def trace():
    return (TraceBuilder(3)
            .store(0, 0x10).load(1, 0x10).acquire(2, 0x100)
            .release(2, 0x100).load(2, 0x11)
            .build("roundtrip", meta={"seed": 7}))


class TestTextFormat:
    def test_roundtrip(self, trace):
        assert loads_text(dumps_text(trace)) == trace

    def test_preserves_name(self, trace):
        assert loads_text(dumps_text(trace)).name == "roundtrip"

    def test_file_roundtrip(self, trace, tmp_path):
        path = str(tmp_path / "t.trc")
        save_text(trace, path)
        assert load_text(path) == trace

    def test_comments_and_blank_lines_ignored(self):
        text = ("#repro-trace-v1\nnum_procs 2\n\n"
                "# a comment\n0 LOAD 0x4  # trailing\n1 ST 8\n")
        t = loads_text(text)
        assert len(t) == 2
        assert t.events[1] == (1, 1, 8)

    def test_missing_header_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("num_procs 2\n0 LOAD 0\n")

    def test_missing_num_procs_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("#repro-trace-v1\n0 LOAD 0\n")

    def test_bad_line_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("#repro-trace-v1\nnum_procs 1\n0 LOAD\n")

    def test_bad_opcode_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("#repro-trace-v1\nnum_procs 1\n0 JUMP 0\n")

    def test_decimal_and_hex_addresses(self):
        t = loads_text("#repro-trace-v1\nnum_procs 1\n0 LOAD 10\n0 LOAD 0x10\n")
        assert [a for _, _, a in t.events] == [10, 16]


class TestTextEdgeCases:
    def test_empty_trace_roundtrip(self):
        empty = Trace([], 4, name="empty")
        loaded = loads_text(dumps_text(empty))
        assert len(loaded) == 0
        assert loaded.num_procs == 4
        assert loaded.name == "empty"

    def test_truncated_header_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("#repro-trace\nnum_procs 1\n0 LOAD 0\n")

    def test_wrong_header_version_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("#repro-trace-v2\nnum_procs 1\n0 LOAD 0\n")

    def test_non_integer_num_procs_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("#repro-trace-v1\nnum_procs two\n0 LOAD 0\n")

    def test_non_integer_proc_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("#repro-trace-v1\nnum_procs 1\nx LOAD 0\n")

    def test_non_integer_addr_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("#repro-trace-v1\nnum_procs 1\n0 LOAD zz\n")

    def test_extra_fields_rejected(self):
        with pytest.raises(TraceFormatError):
            loads_text("#repro-trace-v1\nnum_procs 1\n0 LOAD 0 0\n")


class TestNpzFormat:
    def test_roundtrip(self, trace, tmp_path):
        path = str(tmp_path / "t.npz")
        save_npz(trace, path)
        loaded = load_npz(path)
        assert loaded == trace
        assert loaded.name == trace.name
        assert loaded.meta["seed"] == 7

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a zip")
        with pytest.raises(TraceFormatError):
            load_npz(str(path))

    def test_unjsonable_meta_degraded_not_lost(self, tmp_path):
        t = TraceBuilder(1).load(0, 0).build("m", meta={"obj": object()})
        path = str(tmp_path / "m.npz")
        save_npz(t, path)
        loaded = load_npz(path)
        assert "obj" in loaded.meta  # repr'd, not dropped

    def test_empty_trace_roundtrip(self, tmp_path):
        empty = Trace([], 4, name="empty", meta={"seed": 0})
        path = str(tmp_path / "empty.npz")
        save_npz(empty, path)
        loaded = load_npz(path)
        assert len(loaded) == 0
        assert loaded.num_procs == 4
        assert loaded.name == "empty"
        assert loaded.meta == {"seed": 0}

    def test_nested_meta_preserved(self, tmp_path):
        t = (TraceBuilder(1).load(0, 0)
             .build("meta", meta={"config": {"rows": 32, "procs": [0, 1]},
                                  "seed": 42}))
        path = str(tmp_path / "meta.npz")
        save_npz(t, path)
        loaded = load_npz(path)
        assert loaded.meta["config"] == {"rows": 32, "procs": [0, 1]}
        assert loaded.meta["seed"] == 42

    def test_missing_array_rejected(self, tmp_path):
        path = str(tmp_path / "partial.npz")
        np.savez(path, proc=np.zeros(1, dtype=np.int64),
                 op=np.zeros(1, dtype=np.int64))
        with pytest.raises(TraceFormatError):
            load_npz(path)

    def test_unequal_array_lengths_rejected(self, tmp_path):
        path = str(tmp_path / "ragged.npz")
        np.savez(path, proc=np.zeros(2, dtype=np.int64),
                 op=np.zeros(2, dtype=np.int64),
                 addr=np.zeros(3, dtype=np.int64),
                 header=np.array('{"name": "", "num_procs": 1, "meta": {}}'))
        with pytest.raises(TraceFormatError):
            load_npz(path)

    def test_out_of_range_proc_rejected(self, tmp_path):
        path = str(tmp_path / "badproc.npz")
        np.savez(path, proc=np.array([5], dtype=np.int64),
                 op=np.zeros(1, dtype=np.int64),
                 addr=np.zeros(1, dtype=np.int64),
                 header=np.array('{"name": "", "num_procs": 2, "meta": {}}'))
        with pytest.raises(TraceFormatError):
            load_npz(path)

    def test_loaded_trace_is_columnar(self, trace, tmp_path):
        path = str(tmp_path / "cols.npz")
        save_npz(trace, path)
        loaded = load_npz(path)
        assert loaded.has_columns  # arrays adopted directly, no decode
        assert loaded.events == trace.events


class TestCached:
    def test_generates_once(self, trace, tmp_path):
        path = str(tmp_path / "cache" / "t.npz")
        calls = []

        def gen():
            calls.append(1)
            return trace

        first = cached(path, gen)
        second = cached(path, gen)
        assert first == trace and second == trace
        assert len(calls) == 1
