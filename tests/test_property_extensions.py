"""Property-based tests for the extension modules (update protocols,

sector coherence, attribution, traffic)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.attribution import attribute_misses
from repro.classify import DuboisClassifier
from repro.mem import BlockMap
from repro.protocols import (
    SectorProtocol,
    run_protocol,
    run_protocols,
    sector_sweep_sizes,
)
from repro.protocols.traffic import estimate_traffic
from repro.trace.events import LOAD, STORE
from repro.trace.trace import Trace

MAX_PROCS = 4
MAX_WORDS = 16


@st.composite
def traces(draw, max_events=50):
    n = draw(st.integers(1, max_events))
    nproc = draw(st.integers(1, MAX_PROCS))
    events = [
        (draw(st.integers(0, nproc - 1)),
         draw(st.sampled_from((LOAD, STORE))),
         draw(st.integers(0, MAX_WORDS - 1)))
        for _ in range(n)
    ]
    return Trace(events, nproc, validate=False)


block_sizes = st.sampled_from((8, 16, 32, 64))


@given(traces(), block_sizes)
@settings(max_examples=80, deadline=None)
def test_wu_misses_are_exactly_first_touches(trace, bb):
    """Write-update never invalidates, so its misses are exactly the
    (block, processor) first touches — at or below every other protocol."""
    bm = BlockMap(bb)
    wu = run_protocol("WU", trace, bb)
    first_touches = {(bm.block_of(a), p) for p, _, a in trace.events}
    assert wu.misses == len(first_touches)
    assert wu.breakdown.pts == 0
    assert wu.breakdown.pfs == 0
    mn = run_protocol("MIN", trace, bb)
    assert wu.misses <= mn.misses


@given(traces(), block_sizes)
@settings(max_examples=60, deadline=None)
def test_cu_bounded_by_wu_and_otf(trace, bb):
    res = run_protocols(trace, bb, ["WU", "CU", "OTF"])
    assert res["WU"].misses <= res["CU"].misses
    assert res["CU"].misses <= res["OTF"].misses


@given(traces(), block_sizes)
@settings(max_examples=50, deadline=None)
def test_sector_monotone_in_granularity(trace, bb):
    """Coarsening the coherence sub-block can only add misses, with MIN
    and OTF as the exact endpoints."""
    misses = []
    for sub in sector_sweep_sizes(bb):
        r = SectorProtocol(trace.num_procs, BlockMap(bb), sub).run(trace)
        misses.append(r.misses)
    assert misses == sorted(misses)
    assert misses[0] == run_protocol("MIN", trace, bb).misses
    assert misses[-1] == run_protocol("OTF", trace, bb).misses


@given(traces(), block_sizes)
@settings(max_examples=80, deadline=None)
def test_attribution_partitions_classifier_totals(trace, bb):
    """Attributed misses (over a one-region-per-word table plus the
    unmapped bucket) always partition the classifier's total."""
    result = attribute_misses(trace, bb, regions=[("low", 0, 8)])
    total = sum(bd.total for bd in result.by_region.values())
    want = DuboisClassifier.classify_trace(trace, BlockMap(bb)).total
    assert total == want


@given(traces(), block_sizes)
@settings(max_examples=60, deadline=None)
def test_traffic_estimates_non_negative_and_consistent(trace, bb):
    for name in ("MIN", "OTF", "WBWI", "WU"):
        r = run_protocol(name, trace, bb)
        t = estimate_traffic(r)
        assert t.fetch_bytes >= r.misses * bb
        assert t.total_bytes == t.data_bytes + t.control_bytes
        assert min(t.fetch_bytes, t.word_write_bytes, t.invalidation_bytes,
                   t.word_invalidation_bytes) >= 0
