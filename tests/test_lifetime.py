"""Unit tests for the generalized lifetime tracker."""

import pytest

from repro.classify import DuboisClassifier, MissClass
from repro.errors import ProtocolError
from repro.mem import BlockMap
from repro.protocols.lifetime import LifetimeTracker
from repro.trace import TraceBuilder
from repro.trace.synth import uniform_random


class TestLifecycle:
    def test_cold_clean_block_is_pc(self):
        t = LifetimeTracker(2, BlockMap(8))
        t.fetch(0, 0)
        t.access(0, 0)
        assert t.invalidate(0, 0) is MissClass.PC

    def test_cold_dirty_block_unused_is_cfs(self):
        t = LifetimeTracker(2, BlockMap(8))
        t.store_performed(1, 1)
        t.fetch(0, 0)
        t.access(0, 0)          # only the clean word
        assert t.invalidate(0, 0) is MissClass.CFS

    def test_cold_dirty_block_used_is_cts(self):
        t = LifetimeTracker(2, BlockMap(8))
        t.store_performed(1, 1)
        t.fetch(0, 0)
        t.access(0, 1)          # consumes the fresh value
        assert t.invalidate(0, 0) is MissClass.CTS

    def test_second_lifetime_pts_or_pfs(self):
        t = LifetimeTracker(2, BlockMap(8))
        t.fetch(0, 0); t.access(0, 0)
        t.invalidate(0, 0)                    # PC, FR now set
        t.store_performed(1, 0)
        t.fetch(0, 0); t.access(0, 0)
        assert t.invalidate(0, 0) is MissClass.PTS
        t.store_performed(1, 1)
        t.fetch(0, 0); t.access(0, 0)         # word 0 value is known now
        assert t.invalidate(0, 0) is MissClass.PFS

    def test_post_fetch_stores_do_not_make_lifetime_essential(self):
        """The key delayed-schedule distinction: a store performed after
        the fetch is not in the cached copy."""
        t = LifetimeTracker(2, BlockMap(8))
        t.fetch(0, 0); t.access(0, 0); t.invalidate(0, 0)
        t.fetch(0, 0)
        t.store_performed(1, 0)   # performed after P0's fetch
        t.access(0, 0)            # reads the stale copy
        assert t.invalidate(0, 0) is MissClass.PFS

    def test_snapshot_delivery_is_blockwise(self):
        t = LifetimeTracker(2, BlockMap(16))
        t.store_performed(1, 0)
        t.store_performed(1, 1)
        t.fetch(0, 0); t.access(0, 0)
        t.invalidate(0, 0)        # CTS, delivers words 0 AND 1
        t.fetch(0, 0); t.access(0, 1)
        assert t.invalidate(0, 0) is MissClass.PFS

    def test_writer_knows_own_values(self):
        t = LifetimeTracker(2, BlockMap(8))
        t.fetch(0, 0); t.access(0, 0)
        t.store_performed(0, 0)
        t.invalidate(0, 0)
        t.fetch(0, 0); t.access(0, 0)
        assert t.invalidate(0, 0) is MissClass.PFS

    def test_finish_classifies_live_lifetimes(self):
        t = LifetimeTracker(2, BlockMap(8))
        t.fetch(0, 0); t.access(0, 0)
        bd = t.finish()
        assert bd.pc == 1 and bd.data_refs == 1

    def test_holds(self):
        t = LifetimeTracker(2, BlockMap(8))
        assert not t.holds(0, 0)
        t.fetch(0, 0)
        assert t.holds(0, 0)
        t.invalidate(0, 0)
        assert not t.holds(0, 0)


class TestReplacementMisses:
    def test_replacement_counted_apart(self):
        t = LifetimeTracker(2, BlockMap(8))
        t.fetch(0, 0); t.access(0, 0); t.invalidate(0, 0)   # PC
        t.fetch(0, 0, replacement=True); t.access(0, 0)
        assert t.invalidate(0, 0) is None
        bd = t.finish()
        assert t.replacement_misses == 1
        assert bd.total == 1


class TestErrors:
    def test_double_fetch_rejected(self):
        t = LifetimeTracker(1, BlockMap(8))
        t.fetch(0, 0)
        with pytest.raises(ProtocolError):
            t.fetch(0, 0)

    def test_access_without_fetch_rejected(self):
        t = LifetimeTracker(1, BlockMap(8))
        with pytest.raises(ProtocolError):
            t.access(0, 0)

    def test_invalidate_without_copy_rejected(self):
        t = LifetimeTracker(1, BlockMap(8))
        with pytest.raises(ProtocolError):
            t.invalidate(0, 0)

    def test_double_finish_rejected(self):
        t = LifetimeTracker(1, BlockMap(8))
        t.finish()
        with pytest.raises(ProtocolError):
            t.finish()


class TestEquivalenceWithAppendixA:
    """Driving the tracker with OTF semantics reproduces Appendix A."""

    @pytest.mark.parametrize("block_bytes", [4, 8, 32, 128])
    def test_matches_dubois_on_random_trace(self, block_bytes):
        trace = uniform_random(5, words=96, num_events=4000, seed=13)
        bm = BlockMap(block_bytes)
        tracker = LifetimeTracker(trace.num_procs, bm)
        valid = {}
        for proc, op, addr in trace.events:
            block = bm.block_of(addr)
            mask = valid.get(block, 0)
            bit = 1 << proc
            if not mask & bit:
                tracker.fetch(proc, block)
                mask |= bit
            tracker.access(proc, addr)
            if op == 1:  # STORE: invalidate remote copies immediately
                others = mask & ~bit
                while others:
                    low = others & -others
                    others ^= low
                    tracker.invalidate(low.bit_length() - 1, block)
                mask = bit
                tracker.store_performed(proc, addr)
            valid[block] = mask
        got = tracker.finish()
        want = DuboisClassifier.classify_trace(trace, bm)
        assert got.as_dict() == want.as_dict()
