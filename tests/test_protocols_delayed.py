"""Unit tests for the delayed protocols RD, SD and SRD."""

import pytest

from repro.protocols import run_protocol, run_protocols
from repro.trace import TraceBuilder


class TestRD:
    def test_invalidation_deferred_until_acquire(self):
        t = (TraceBuilder(2)
             .load(0, 0)      # P0 caches the block
             .store(1, 1)     # invalidation sent, buffered at P0
             .load(0, 0)      # still reads the stale copy: HIT
             .acquire(0, 100) # invalidation applied here
             .load(0, 0)      # now misses
             .build())
        r = run_protocol("RD", t, 8)
        assert r.misses == 3  # P0 cold, P1 cold, P0 post-acquire

    def test_without_acquire_no_extra_miss(self):
        t = (TraceBuilder(2)
             .load(0, 0).store(1, 1).load(0, 0).load(0, 0)
             .build())
        r = run_protocol("RD", t, 8)
        assert r.misses == 2

    def test_receive_combining(self):
        """Several invalidations of one block before the acquire combine
        into a single miss."""
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0).store(1, 1).store(1, 0)
             .acquire(0, 100)
             .load(0, 0)
             .build())
        r = run_protocol("RD", t, 8)
        assert r.misses == 3

    def test_store_to_pending_block_is_ownership_miss(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 1)     # pending at P0
             .store(0, 0)     # P0 must refetch before writing
             .build())
        r = run_protocol("RD", t, 8)
        assert r.counters.ownership_misses == 1
        assert r.misses == 3

    def test_acquire_applies_only_own_buffer(self):
        t = (TraceBuilder(3)
             .load(0, 0).load(2, 0)
             .store(1, 1)      # pending at P0 and P2
             .acquire(0, 100)
             .load(0, 0)       # P0 misses
             .load(2, 0)       # P2 still hits
             .build())
        r = run_protocol("RD", t, 8)
        assert r.misses == 4


class TestSD:
    def test_store_to_non_owned_block_is_buffered(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0)      # P1 not owner: buffered, P0 keeps its copy
             .load(0, 0)       # HIT (invalidation not yet sent)
             .build())
        r = run_protocol("SD", t, 4)
        assert r.misses == 2
        assert r.counters.stores_buffered == 1

    def test_release_flushes_and_invalidates(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0)
             .release(1, 100)  # flush: P0 invalidated now
             .load(0, 0)       # miss
             .build())
        r = run_protocol("SD", t, 4)
        assert r.misses == 3

    def test_owner_stores_complete_immediately(self):
        t = (TraceBuilder(2)
             .store(0, 0)
             .release(0, 100)  # P0 becomes owner at the flush
             .load(1, 0)
             .store(0, 0)      # owner: performed without delay
             .load(1, 0)       # misses immediately
             .build())
        r = run_protocol("SD", t, 4)
        assert r.misses == 3
        assert r.counters.stores_buffered == 1  # only the first store

    def test_send_combining_counts(self):
        t = (TraceBuilder(2)
             .store(1, 0).store(1, 1).store(1, 0)
             .release(1, 100)
             .build())
        r = run_protocol("SD", t, 8)
        assert r.counters.stores_buffered == 3
        assert r.counters.stores_combined == 2

    def test_end_of_trace_flushes(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0)      # buffered, never released
             .build())
        r = run_protocol("SD", t, 4)
        # the end-of-run flush invalidates P0's live copy; classification
        # still happens exactly once per lifetime
        assert r.breakdown.total == r.misses == 2


class TestSRD:
    def test_combines_both_delays(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 0)       # buffered at sender
             .load(0, 0)        # hit
             .release(1, 100)   # sent; buffered at P0
             .load(0, 0)        # still hit!
             .acquire(0, 100)   # applied
             .load(0, 0)        # miss
             .build())
        r = run_protocol("SRD", t, 4)
        assert r.misses == 3

    def test_store_to_pending_block_ownership_miss(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 1).release(1, 100)   # pending at P0
             .store(0, 0)                   # refetch for ownership
             .build())
        r = run_protocol("SRD", t, 8)
        assert r.counters.ownership_misses == 1

    def test_srd_never_worse_than_rd_or_sd_here(self, producer_trace):
        res = run_protocols(producer_trace, 16, ["RD", "SD", "SRD"])
        assert res["SRD"].misses <= res["RD"].misses
        assert res["SRD"].misses <= res["SD"].misses


class TestEssentialComponentsStable:
    def test_cold_and_pts_match_across_delayed_protocols(self, producer_trace):
        """Paper section 7: 'The differences between the essential miss
        rates of OTF, RD, SD and SRD are negligible' — on clean
        producer/consumer sharing they are identical."""
        res = run_protocols(producer_trace, 16, ["OTF", "RD", "SD", "SRD"])
        colds = {r.breakdown.cold for r in res.values()}
        assert len(colds) == 1
