"""Unit tests for the protocol base machinery, OTF and MIN."""

import pytest

from repro.classify import DuboisClassifier
from repro.errors import ProtocolError
from repro.mem import BlockMap
from repro.protocols import (
    MINProtocol,
    OTFProtocol,
    PROTOCOL_REGISTRY,
    run_protocol,
)
from repro.protocols.base import Protocol, register
from repro.trace import TraceBuilder
from repro.trace.synth import false_sharing_pingpong, producer_consumer


class TestBaseMachinery:
    def test_has_copy_and_fetch(self):
        p = OTFProtocol(2, BlockMap(8))
        assert not p.has_copy(0, 0)
        p.fetch(0, 0)
        assert p.has_copy(0, 0)

    def test_drop_without_copy_rejected(self):
        p = OTFProtocol(2, BlockMap(8))
        with pytest.raises(ProtocolError):
            p.drop_copy(0, 0)

    def test_iter_procs(self):
        assert list(Protocol.iter_procs(0b1011)) == [0, 1, 3]
        assert list(Protocol.iter_procs(0)) == []

    def test_trace_proc_count_checked(self):
        p = OTFProtocol(1, BlockMap(8))
        t = TraceBuilder(3).load(2, 0).build()
        with pytest.raises(ProtocolError):
            p.run(t)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ProtocolError):
            @register
            class Dup(Protocol):
                name = "OTF"

    def test_registry_contains_all_seven(self):
        assert set(PROTOCOL_REGISTRY) >= {"MIN", "OTF", "RD", "SD", "SRD",
                                          "WBWI", "MAX"}

    def test_nonpositive_procs_rejected(self):
        with pytest.raises(ProtocolError):
            OTFProtocol(0, BlockMap(8))


class TestOTF:
    def test_decomposition_matches_appendix_a(self, random_trace):
        for bb in (4, 16, 64):
            want = DuboisClassifier.classify_trace(random_trace, BlockMap(bb))
            got = run_protocol("OTF", random_trace, bb)
            assert got.breakdown.as_dict() == want.as_dict()

    def test_store_invalidates_all_remote_copies(self):
        t = (TraceBuilder(3)
             .load(0, 0).load(1, 0).load(2, 0)
             .store(0, 0)
             .load(1, 0).load(2, 0)
             .build())
        r = run_protocol("OTF", t, 4)
        assert r.counters.invalidations_sent == 2
        assert r.breakdown.pts == 2

    def test_upgrade_is_not_a_miss(self):
        t = TraceBuilder(1).load(0, 0).store(0, 0).build()
        r = run_protocol("OTF", t, 4)
        assert r.misses == 1

    def test_result_fields(self, random_trace):
        r = run_protocol("OTF", random_trace, 16)
        assert r.protocol == "OTF"
        assert r.block_bytes == 16
        assert r.trace_name == random_trace.name
        assert r.misses == r.breakdown.total
        assert 0 < r.miss_rate < 100
        bars = r.fig6_bars()
        assert bars["TOTAL"] == pytest.approx(
            bars["TRUE"] + bars["COLD"] + bars["FALSE"])


class TestMIN:
    def test_min_equals_essential_on_producer_consumer(self):
        t = producer_consumer(4, words=16, rounds=6)
        for bb in (4, 16, 64):
            want = DuboisClassifier.classify_trace(t, BlockMap(bb))
            got = run_protocol("MIN", t, bb)
            assert got.misses == want.essential

    def test_min_never_exceeds_essential(self, random_trace):
        for bb in (4, 16, 64, 256):
            want = DuboisClassifier.classify_trace(random_trace, BlockMap(bb))
            got = run_protocol("MIN", random_trace, bb)
            assert got.misses <= want.essential

    def test_min_has_no_false_sharing(self, pingpong_trace):
        r = run_protocol("MIN", pingpong_trace, 64)
        assert r.breakdown.pfs == 0
        assert r.misses == r.breakdown.essential

    def test_word_invalidation_counted(self):
        t = TraceBuilder(2).load(0, 0).store(1, 1).build()
        r = run_protocol("MIN", t, 8)
        assert r.counters.word_invalidations == 1

    def test_write_through_traffic(self):
        t = TraceBuilder(1).store(0, 0).store(0, 0).store(0, 1).build()
        r = run_protocol("MIN", t, 8)
        assert r.counters.write_throughs == 3

    def test_access_to_clean_word_of_dirty_block_hits(self):
        """The whole point of word invalidation: no false-sharing miss."""
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 1)    # word 1 invalid in P0's copy
             .load(0, 0)     # clean word: HIT
             .build())
        r = run_protocol("MIN", t, 8)
        assert r.misses == 2  # just the two cold misses

    def test_access_to_dirty_word_misses_once(self):
        t = (TraceBuilder(2)
             .load(0, 0)
             .store(1, 1).store(1, 0)
             .load(0, 1)     # miss; fetch clears BOTH pending words
             .load(0, 0)     # hit
             .build())
        r = run_protocol("MIN", t, 8)
        assert r.misses == 3
        assert r.breakdown.pts == 1
