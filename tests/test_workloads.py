"""Unit tests for the four paper workloads and the two extras."""

import pytest

from repro.classify import DuboisClassifier
from repro.errors import ConfigError
from repro.mem import BlockMap
from repro.trace.validate import check_races, sync_pairs_balanced
from repro.workloads import FFT, Jacobi, LU, MP3D, MatMul, SOR, Water


class TestLU:
    def test_determinism(self):
        a = LU(8, num_procs=4).generate()
        b = LU(8, num_procs=4).generate()
        assert a.events == b.events

    def test_race_free(self, lu_trace):
        assert check_races(lu_trace).is_race_free

    def test_sync_balanced(self, lu_trace):
        assert sync_pairs_balanced(lu_trace) is None

    def test_label_and_meta(self, lu_trace):
        assert lu_trace.name == "LU12"
        assert lu_trace.meta["workload"] == "lu"
        assert lu_trace.meta["data_set_bytes"] > 12 * 12 * 8

    def test_column_phase_structure(self, lu_trace):
        """Columns are single-writer: every store to a column's words comes
        from its round-robin owner."""
        n, procs, ew = 12, 4, 2
        for proc, op, addr in lu_trace.events:
            if op != 1:
                continue
            col = addr // (n * ew)
            if col >= n:
                continue  # flag words
            assert proc == col % procs

    def test_cts_to_pts_conversion(self, lu_trace):
        """Paper: as blocks grow past the column size, CTS turns into PTS."""
        small = DuboisClassifier.classify_trace(lu_trace, BlockMap(8))
        large = DuboisClassifier.classify_trace(lu_trace, BlockMap(256))
        assert small.cts > large.cts
        assert large.pts > small.pts

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            LU(1)
        with pytest.raises(ConfigError):
            LU(8, elem_words=0)


class TestJacobi:
    def test_race_free(self, jacobi_trace):
        assert check_races(jacobi_trace).is_race_free

    def test_determinism(self):
        a = Jacobi(8, iterations=2, num_procs=4).generate()
        b = Jacobi(8, iterations=2, num_procs=4).generate()
        assert a.events == b.events

    def test_true_sharing_halves_from_4_to_8_bytes(self, jacobi_trace):
        """8-byte elements: the paper's B=4 -> B=8 halving."""
        b4 = DuboisClassifier.classify_trace(jacobi_trace, BlockMap(4))
        b8 = DuboisClassifier.classify_trace(jacobi_trace, BlockMap(8))
        ratio = (b8.pts + b8.cts) / max(1, b4.pts + b4.cts)
        assert 0.4 < ratio < 0.75

    def test_subgrid_row_false_sharing_jump(self):
        """A subgrid row is (dim/side)*8 bytes; PFS jumps once blocks span
        two processors' partitions."""
        tr = Jacobi(16, iterations=3, num_procs=4).generate()
        row_bytes = (16 // 2) * 8  # 64 bytes
        below = DuboisClassifier.classify_trace(tr, BlockMap(row_bytes))
        above = DuboisClassifier.classify_trace(tr, BlockMap(row_bytes * 2))
        assert above.pfs > 2 * max(1, below.pfs)

    def test_nonsquare_proc_count_rejected(self):
        with pytest.raises(ConfigError):
            Jacobi(16, num_procs=6)

    def test_indivisible_grid_rejected(self):
        with pytest.raises(ConfigError):
            Jacobi(10, num_procs=16)

    def test_padded_barrier_option(self):
        tr = Jacobi(8, iterations=2, num_procs=4, padded_barrier=True).generate()
        assert check_races(tr).is_race_free


class TestMP3D:
    def test_race_free(self, mp3d_trace):
        assert check_races(mp3d_trace).is_race_free

    def test_determinism_and_seed_sensitivity(self):
        a = MP3D(30, num_cells=8, time_steps=2, num_procs=4, seed=1).generate()
        b = MP3D(30, num_cells=8, time_steps=2, num_procs=4, seed=1).generate()
        c = MP3D(30, num_cells=8, time_steps=2, num_procs=4, seed=2).generate()
        assert a.events == b.events
        assert a.events != c.events

    def test_locking_produces_acquires(self, mp3d_trace):
        counts = mp3d_trace.counts()
        assert counts.acquires > 0
        # per barrier episode: num_procs-1 waiters acquire the flag without
        # releasing it, while the last arriver releases it without an
        # acquire, so acquires exceed releases by num_procs-2 per episode
        steps = mp3d_trace.meta["config"]["time_steps"]
        assert counts.acquires == counts.releases \
            + steps * (mp3d_trace.num_procs - 2)

    def test_particle_false_sharing_appears_at_8_bytes(self, mp3d_trace):
        """36-byte interleaved particles: PFS at B>=8."""
        b4 = DuboisClassifier.classify_trace(mp3d_trace, BlockMap(4))
        b8 = DuboisClassifier.classify_trace(mp3d_trace, BlockMap(8))
        assert b4.pfs == 0
        assert b8.pfs > 0

    def test_reads_dominate_writes(self, mp3d_trace):
        counts = mp3d_trace.counts()
        assert counts.loads > 1.5 * counts.stores

    def test_bad_configs(self):
        with pytest.raises(ConfigError):
            MP3D(4, num_procs=16)
        with pytest.raises(ConfigError):
            MP3D(100, num_cells=0)
        with pytest.raises(ConfigError):
            MP3D(100, time_steps=0)
        with pytest.raises(ConfigError):
            MP3D(100, collision_rate=1.5)


class TestWater:
    def test_race_free(self, water_trace):
        assert check_races(water_trace).is_race_free

    def test_determinism(self):
        a = Water(6, time_steps=1, num_procs=3).generate()
        b = Water(6, time_steps=1, num_procs=3).generate()
        assert a.events == b.events

    def test_molecule_false_sharing_near_record_size(self, water_trace):
        """680-byte molecules: PFS grows as blocks approach the record."""
        small = DuboisClassifier.classify_trace(water_trace, BlockMap(64))
        large = DuboisClassifier.classify_trace(water_trace, BlockMap(1024))
        assert large.pfs > small.pfs

    def test_reads_heavily_dominate(self, water_trace):
        counts = water_trace.counts()
        assert counts.loads > 2.5 * counts.stores

    def test_bad_configs(self):
        with pytest.raises(ConfigError):
            Water(1)
        with pytest.raises(ConfigError):
            Water(8, time_steps=0)


class TestExtras:
    def test_matmul_race_free(self, matmul_trace):
        assert check_races(matmul_trace).is_race_free

    def test_matmul_single_touch_breaks_torrellas(self, matmul_trace):
        """Non-iterative access: Torrellas classifies essentially all
        misses as cold (the paper's section 3.1 criticism)."""
        from repro.classify import compare_classifications
        c = compare_classifications(matmul_trace, 32)
        assert c.torrellas.cold > 0.9 * c.torrellas.total
        assert c.ours.pts + c.ours.pfs > 0 or c.ours.cold == c.ours.total

    def test_fft_race_free(self, fft_trace):
        assert check_races(fft_trace).is_race_free

    def test_fft_power_of_two_enforced(self):
        with pytest.raises(ConfigError):
            FFT(100, num_procs=4)
        with pytest.raises(ConfigError):
            FFT(8, num_procs=16)

    def test_fft_stage_structure(self, fft_trace):
        # log2(64) stages + init barrier, 4 procs
        counts = fft_trace.counts()
        assert counts.acquires > 0


class TestSOR:
    @pytest.fixture(scope="class")
    def sor_trace(self):
        return SOR(16, iterations=2, num_procs=4).generate()

    def test_race_free(self, sor_trace):
        assert check_races(sor_trace).is_race_free

    def test_determinism(self):
        a = SOR(8, iterations=1, num_procs=4).generate()
        b = SOR(8, iterations=1, num_procs=4).generate()
        assert a.events == b.events

    def test_in_place_single_writer(self, sor_trace):
        """Every grid cell is written only by its owning processor."""
        dim, ew, side = 16, 2, 2
        sub = dim // side
        for proc, op, addr in sor_trace.events:
            if op != 1:
                continue
            cell = addr // ew
            if cell >= dim * dim:
                continue  # sync words
            r, c = divmod(cell, dim)
            owner = (r // sub) * side + (c // sub)
            assert proc == owner

    def test_partition_row_false_sharing_jump(self, sor_trace):
        """Same decomposition shape as Jacobi: PFS jumps when blocks span
        two processors' subgrid rows (8 elements x 8 B = 64 B here)."""
        below = DuboisClassifier.classify_trace(sor_trace, BlockMap(64))
        above = DuboisClassifier.classify_trace(sor_trace, BlockMap(128))
        assert above.pfs > 10 * max(1, below.pfs)

    def test_two_barriers_per_iteration(self, sor_trace):
        # 2 colors x 2 iterations = 4 barrier episodes; the last arrivers
        # release the flag once per episode.
        releases = [a for p, op, a in sor_trace.events if op == 3]
        iterations = sor_trace.meta["config"]["iterations"]
        assert len(releases) >= 2 * iterations

    def test_bad_configs(self):
        with pytest.raises(ConfigError):
            SOR(16, num_procs=6)
        with pytest.raises(ConfigError):
            SOR(10, num_procs=16)
        with pytest.raises(ConfigError):
            SOR(16, iterations=0, num_procs=4)


class TestWorkloadMeta:
    def test_all_traces_have_cycles_and_data_set(self, workload_traces):
        for name, tr in workload_traces.items():
            assert tr.meta["cycles"] > 0, name
            assert tr.meta["data_set_bytes"] > 0, name
            assert tr.meta["config"]["num_procs"] == tr.num_procs

    def test_speedup_positive_and_bounded(self, workload_traces):
        from repro.trace.stats import benchmark_stats
        for name, tr in workload_traces.items():
            st = benchmark_stats(tr)
            assert 1.0 <= st.speedup <= tr.num_procs + 1e-9, name
