#!/usr/bin/env python
"""Quickstart: classify the misses of a tiny parallel execution.

Builds the paper's Figure 1 example trace by hand, classifies it at two
block sizes with the essential/useless-miss classification (Dubois et al.,
ISCA 1993), and contrasts the result with the two prior schemes.

Run:  python examples/quickstart.py
"""

from repro import TraceBuilder, classify_trace, compare_classifications


def main():
    # Two processors; words 0 and 1 end up in the same 8-byte block.
    trace = (TraceBuilder(num_procs=2)
             .store(0, 0)    # T0: P0 defines word 0
             .load(1, 0)     # T1: P1 consumes it        (true sharing)
             .store(0, 1)    # T2: P0 defines word 1     (invalidates P1)
             .load(1, 1)     # T3: P1 consumes word 1    (true sharing)
             .build("figure-1"))

    print("The trace (the paper's Figure 1):")
    print(trace.format())
    print()

    for block_bytes in (4, 8):
        breakdown = classify_trace(trace, block_bytes)
        print(f"Block size {block_bytes} bytes:")
        print(f"  {breakdown.describe()}")
        print(f"  -> essential misses: {breakdown.essential} "
              f"(cold {breakdown.cold} + true sharing {breakdown.pts}), "
              f"useless: {breakdown.useless}")
        print()

    # How do the prior classifications see the same execution?
    comparison = compare_classifications(trace, 8)
    print("Scheme comparison at 8-byte blocks:")
    print(f"  ours:      {comparison.ours.describe()}")
    print(f"  Eggers:    {comparison.eggers.describe()}")
    print(f"  Torrellas: {comparison.torrellas.describe()}")


if __name__ == "__main__":
    main()
