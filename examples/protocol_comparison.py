#!/usr/bin/env python
"""Compare the seven invalidation schedules on a benchmark workload.

Regenerates one group of the paper's Figure 6 for a chosen benchmark and
block size, with the TRUE/COLD/FALSE decomposition rendered as stacked
ASCII bars.

Run:  python examples/protocol_comparison.py [WORKLOAD] [BLOCK_BYTES]
e.g.  python examples/protocol_comparison.py JACOBI64 1024
"""

import sys

from repro import run_protocols
from repro.analysis import format_stacked_bars
from repro.classify import DuboisClassifier
from repro.mem import BlockMap
from repro.workloads import make_workload


def main(workload_name="JACOBI64", block_bytes=1024):
    print(f"Generating {workload_name} (16 simulated processors)...")
    trace = make_workload(workload_name).generate()
    counts = trace.counts()
    print(f"  {len(trace)} events ({counts.loads} loads, {counts.stores} "
          f"stores, {counts.acquires + counts.releases} sync)\n")

    essential = DuboisClassifier.classify_trace(
        trace, BlockMap(block_bytes)).essential_rate
    print(f"Essential miss rate of the trace: {essential:.2f}% "
          f"(the floor any schedule can reach)\n")

    results = run_protocols(trace, block_bytes)
    rows = {name: {"TRUE": r.pts_rate, "COLD": r.cold_rate,
                   "FALSE": r.pfs_rate}
            for name, r in results.items()}
    print(format_stacked_bars(
        rows, title=f"{workload_name} @ B={block_bytes} bytes — miss rate "
                    f"decomposition (%)",
        glyphs={"TRUE": "T", "COLD": "C", "FALSE": "F"}))

    print()
    print("Reading the bars (paper section 7):")
    print(" * MIN is the essential rate — no F segment by construction.")
    print(" * OTF is the classic write-invalidate baseline.")
    print(" * RD/SD/SRD delay+combine invalidations to shrink the F part;")
    print("   the TRUE+COLD parts barely move across schedules.")
    print(" * WBWI ~ MIN at small blocks; at large blocks the gap is the")
    print("   cost of maintaining ownership.")
    print(" * MAX is the legal worst case under release consistency.")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "JACOBI64"
    block = int(sys.argv[2]) if len(sys.argv) > 2 else 1024
    main(name, block)
