#!/usr/bin/env python
"""Attribute misses to the data structures causing them.

The paper explains its Figure 5 curves by naming data structures: MP3D's
false sharing comes "from modifications of particles and of space cells",
plus the ANL sync words at small blocks.  This example performs that
attribution mechanically for MP3D: every miss is charged to the structure
containing the word whose access missed, giving a per-structure
PC/CTS/CFS/PTS/PFS table and a ranked list of false-sharing offenders.

Run:  python examples/miss_attribution.py [BLOCK_BYTES]
"""

import sys
from collections import defaultdict

from repro.analysis import attribute_misses
from repro.classify.breakdown import DuboisBreakdown
from repro.workloads import make_workload


def family_of(region_name):
    """Collapse 'mp3d.particle[17]' -> 'particle'."""
    name = region_name.split(".", 1)[-1]
    return name.split("[", 1)[0]


def main(block_bytes=64):
    print("Generating MP3D200 (16 simulated processors)...")
    trace = make_workload("MP3D200").generate()

    result = attribute_misses(trace, block_bytes)

    # Roll individual array elements up into structure families.
    families = defaultdict(lambda: DuboisBreakdown(0, 0, 0, 0, 0, 0))
    for name, bd in result.by_region.items():
        families[family_of(name)] = families[family_of(name)] + bd

    print(f"\nMisses by data structure @ {block_bytes}-byte blocks:")
    print(f"  {'structure':12s} {'cold':>7s} {'PTS':>7s} {'PFS':>7s} "
          f"{'total':>7s}  {'share of all PFS':>16s}")
    total_pfs = sum(bd.pfs for bd in families.values()) or 1
    for fam, bd in sorted(families.items(), key=lambda kv: -kv[1].total):
        print(f"  {fam:12s} {bd.cold:>7d} {bd.pts:>7d} {bd.pfs:>7d} "
              f"{bd.total:>7d}  {100 * bd.pfs / total_pfs:>15.1f}%")

    print("\nTop false-sharing regions (element granularity):")
    for name, count in result.top_false_sharers(limit=5):
        print(f"  {name:24s} {count} useless misses")

    print("\nReading the table (paper section 6):")
    print(" * particle: 36-byte records, interleaved owners -> neighbours")
    print("   share blocks; their PFS is the layout cost of packing.")
    print(" * cell: 48-byte records updated under locks -> write-shared")
    print("   blocks between adjacent cells.")
    print(" * celllock: adjacent one-word ANL locks -> sync-word sharing.")
    print("Padding any of these to the block size moves its PFS to zero")
    print("without touching the PTS column (the genuine communication).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
