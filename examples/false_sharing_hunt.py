#!/usr/bin/env python
"""Hunting false sharing in a data layout — the paper's motivating use.

A correct true/false sharing measurement tells you whether a miss rate can
be fixed by *layout* changes (padding, alignment) or whether it is genuine
communication.  This example builds the classic "per-thread counters in one
cache line" bug, shows the classification pinpointing it, then applies the
fix (padding) and shows the useless misses disappear.

Run:  python examples/false_sharing_hunt.py
"""

from repro import classify_trace
from repro.execution import Machine, ops
from repro.mem import Allocator

NUM_PROCS = 8
INCREMENTS = 200
BLOCK_BYTES = 64


def counter_program(stride_bytes):
    """Each processor increments its own counter; counters are laid out
    ``stride_bytes`` apart."""
    alloc = Allocator()
    counters = [alloc.alloc_bytes(f"counter[{p}]", stride_bytes)
                for p in range(NUM_PROCS)]

    def thread(tid):
        mine = counters[tid].base
        for _ in range(INCREMENTS):
            yield from ops.read_modify_write(mine)

    machine = Machine(NUM_PROCS)
    return machine.run([thread(p) for p in range(NUM_PROCS)],
                       name=f"counters-stride{stride_bytes}")


def report(trace):
    bd = classify_trace(trace, BLOCK_BYTES)
    print(f"  {trace.name}: miss rate {bd.miss_rate:.2f}%  "
          f"({bd.total} misses: {bd.cold} cold, {bd.pts} true sharing, "
          f"{bd.pfs} FALSE sharing)")
    return bd


def main():
    print(f"Per-processor counters, {NUM_PROCS} processors, "
          f"{BLOCK_BYTES}-byte blocks\n")

    print("Buggy layout — counters packed 4 bytes apart (one block):")
    packed = report(counter_program(stride_bytes=4))

    print("\nFixed layout — counters padded to one block each:")
    padded = report(counter_program(stride_bytes=BLOCK_BYTES))

    print()
    eliminated = packed.pfs - padded.pfs
    print(f"Padding eliminated {eliminated} useless misses "
          f"({packed.pfs} -> {padded.pfs}).")
    print(f"Essential misses are unchanged ({packed.essential} vs "
          f"{padded.essential}): nothing was truly shared — the "
          f"classification proves the misses were pure layout artifacts.")

    assert padded.pfs == 0
    assert packed.essential == padded.essential


if __name__ == "__main__":
    main()
