#!/usr/bin/env python
"""Sweep the cache block size and watch the miss classes move.

Regenerates one panel of the paper's Figure 5 for a chosen benchmark:
the five-way decomposition (PC/CTS/CFS/PTS/PFS) at block sizes 4..1024
bytes, with the block-size monotonicity law checked along the way.

Run:  python examples/block_size_sweep.py [WORKLOAD]
e.g.  python examples/block_size_sweep.py MP3D200
"""

import sys

from repro.analysis import check_block_size_monotonicity, sweep_block_sizes
from repro.analysis.report import format_bars
from repro.workloads import make_workload


def main(workload_name="MP3D200"):
    print(f"Generating {workload_name}...")
    trace = make_workload(workload_name).generate()

    sweep = sweep_block_sizes(trace)
    print()
    print(sweep.format())

    print()
    print("Essential vs total miss rate by block size:")
    top = max(sweep.total_series())
    for bb, bd in zip(sweep.block_sizes, sweep.breakdowns):
        print(format_bars({f"B={bb:<5d} total": bd.miss_rate,
                           f"B={bb:<5d} ess. ": bd.essential_rate},
                          width=40, max_value=top))

    violations = check_block_size_monotonicity(sweep)
    print()
    if violations:
        print("MONOTONICITY VIOLATIONS (this should never happen):")
        for v in violations:
            print(" ", v)
    else:
        print("Verified (paper section 2.1): essential misses, cold misses "
              "and CTS+PTS never increase with the block size.")
        print("Anything the total gains at large blocks is pure false "
              "sharing — useless misses a smarter protocol can eliminate.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "MP3D200")
