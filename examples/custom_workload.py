#!/usr/bin/env python
"""Write your own parallel workload and analyze it.

Shows the full substrate: allocate data structures with the paper's layout
tools, synchronize with ANL-style locks/barriers, run on the simulated
multiprocessor, prove the trace race-free, then classify and simulate
protocols on it.

The example program is a work-queue: a shared queue of task records that
workers claim under a lock and then update in place.  The task records are
deliberately NOT padded — the analysis finds the resulting false sharing.

Run:  python examples/custom_workload.py
"""

from repro import classify_trace, run_protocols
from repro.execution import Barrier, Lock, Machine, ops
from repro.mem import Allocator, StructLayout
from repro.trace.validate import assert_race_free

NUM_PROCS = 8
NUM_TASKS = 64
BLOCK_BYTES = 64

# A 20-byte task record: not a multiple of the 64-byte block size, so
# consecutive tasks share blocks (like MP3D's 36-byte particles).
TASK = StructLayout("task", [
    ("state", 4),     # claimed / done
    ("input", 8),
    ("result", 8),
])


def build_program():
    alloc = Allocator()
    queue_lock = Lock("queue.lock", alloc)
    next_task = alloc.alloc_words("queue.next", 1)
    tasks = alloc.alloc_array("task", NUM_TASKS, TASK.nbytes)
    done_barrier = Barrier("done", alloc, NUM_PROCS)

    # The scheduler decides who claims which task; precompute the claim
    # order deterministically (round-robin here, like a real queue pop).
    claims = {p: list(range(p, NUM_TASKS, NUM_PROCS))
              for p in range(NUM_PROCS)}

    def worker(tid):
        for task_index in claims[tid]:
            # Claim: pop the queue head under the lock.
            yield from queue_lock.acquire(tid)
            yield from ops.read_modify_write(next_task.base)
            yield ops.store(TASK.field_word(tasks[task_index], "state"))
            yield from queue_lock.release(tid)
            # Work: read the input, write the result — no lock needed,
            # the task is exclusively ours now... or is the *block*?
            yield from ops.load_words(
                TASK.field_words(tasks[task_index], "input"))
            for w in TASK.field_words(tasks[task_index], "result"):
                yield from ops.read_modify_write(w)
            yield ops.store(TASK.field_word(tasks[task_index], "state"))
        yield from done_barrier.wait(tid)

    machine = Machine(NUM_PROCS)
    trace = machine.run([worker(p) for p in range(NUM_PROCS)],
                        name="work-queue",
                        meta={"data_set_bytes": alloc.used_bytes})
    return trace


def main():
    trace = build_program()
    print(f"Generated {trace.name}: {len(trace)} events, "
          f"{trace.meta['data_set_bytes']} bytes of data\n")

    # The delayed protocols are only meaningful on race-free traces.
    assert_race_free(trace)
    print("Race check: PASSED (all task updates properly synchronized)\n")

    bd = classify_trace(trace, BLOCK_BYTES)
    print(f"Classification at {BLOCK_BYTES}-byte blocks:")
    print(f"  {bd.describe()}\n")
    if bd.pfs > 0.2 * bd.total:
        per_block = BLOCK_BYTES // TASK.nbytes + 1
        print(f"  {100 * bd.pfs / bd.total:.0f}% of misses are USELESS: "
              f"the {TASK.nbytes}-byte task records pack ~{per_block} per "
              f"block, so workers invalidate each other without "
              f"communicating.  Padding tasks to {BLOCK_BYTES} bytes "
              f"would eliminate these.\n")

    print("What the delaying protocols recover:")
    for name, r in run_protocols(trace, BLOCK_BYTES,
                                 ["MIN", "OTF", "RD", "SRD", "WBWI"]).items():
        print(f"  {r.describe()}")


if __name__ == "__main__":
    main()
