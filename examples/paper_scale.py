#!/usr/bin/env python
"""Run the paper's *true* large configurations (LU200, MP3D10000, WATER288).

The benchmark suite uses scaled stand-ins so it regenerates in minutes;
this script runs the real sizes — tens of millions of simulated references
— for anyone who wants the closest possible comparison with the paper's
section 7.  Expect tens of minutes per benchmark in pure Python.

A ``--sample FRACTION`` option applies deterministic window sampling
(:meth:`repro.trace.Trace.sample`) after generation, which keeps the
interleaving structure while cutting classification cost; note that
sampling biases cold-miss counts high (each window restart looks cold), so
use it for sharing-shape exploration, not for cold-rate comparisons.

Generated traces are cached on disk (``--trace-cache DIR``, default
``~/.cache/repro/traces`` or ``$REPRO_TRACE_CACHE``), so a second run of
the same configuration skips the tens-of-minutes generation step entirely.

Run:  python examples/paper_scale.py [--sample 0.1] [--jobs N] [NAMES...]
e.g.  python examples/paper_scale.py --sample 0.05 LU200
"""

import argparse
import time

from repro.analysis import sweep_block_sizes
from repro.trace.cache import WorkloadTraceCache
from repro.trace.stats import benchmark_stats
from repro.workloads import PAPER_LARGE_SUITE


def run_one(name, sample_fraction, cache, jobs):
    print(f"=== {name} ===")
    t0 = time.time()
    trace = cache.get(name)
    print(f"obtained {len(trace):,} events in {time.time() - t0:.0f}s "
          f"(cache: {cache.path_for(name)})")
    stats = benchmark_stats(trace)
    print(f"  reads={stats.reads:,} writes={stats.writes:,} "
          f"acq/rel={stats.acq_rel:,} data={stats.data_set_kb:.0f}KB "
          f"speedup={stats.speedup:.1f}")
    if sample_fraction:
        trace = trace.sample(sample_fraction)
        print(f"  sampled to {len(trace):,} events "
              f"(fraction {sample_fraction})")
    t0 = time.time()
    sweep = sweep_block_sizes(trace, (32, 64, 256, 1024), jobs=jobs)
    print(sweep.format())
    print(f"classified in {time.time() - t0:.0f}s\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("names", nargs="*", default=list(PAPER_LARGE_SUITE),
                        help="workloads to run (default: the paper's three)")
    parser.add_argument("--sample", type=float, default=0.0,
                        help="trace fraction to classify (0 = all)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes per sweep (0 = one per CPU)")
    parser.add_argument("--trace-cache", default=None, metavar="DIR",
                        help="trace cache directory (default: "
                             "$REPRO_TRACE_CACHE or ~/.cache/repro/traces)")
    args = parser.parse_args()
    cache = WorkloadTraceCache(args.trace_cache)
    for name in args.names:
        run_one(name, args.sample, cache, args.jobs)


if __name__ == "__main__":
    main()
