#!/usr/bin/env python
"""Why the classification scheme matters (paper sections 3 and 7).

Runs all three classifications — ours, Eggers', Torrellas' — over two
workloads chosen to expose the prior schemes' failure modes:

* LU: Eggers' scheme understates the essential miss rate, which would
  mislead an architect into chasing improvements that don't exist (the
  paper's LU32 example: Eggers says 1.68% essential, truth is 2.14%,
  and WBWI already achieves 2.37%).
* MATMUL: a non-iterative algorithm — words are touched essentially once —
  where Torrellas' word-granular cold rule files nearly everything under
  "cold" and the true/false sharing split collapses.

Run:  python examples/classification_showdown.py
"""

from repro import compare_classifications
from repro.protocols import run_protocol
from repro.workloads import make_workload

BLOCK_BYTES = 64


def show(name, trace):
    c = compare_classifications(trace, BLOCK_BYTES)
    print(f"{name} @ {BLOCK_BYTES}-byte blocks "
          f"({c.ours.data_refs} references, {c.ours.total} misses):")
    print(f"  {'scheme':<10s} {'cold':>7s} {'true':>7s} {'false':>7s} "
          f"{'essential%':>11s}")
    print(f"  {'ours':<10s} {c.ours.cold:>7d} {c.ours.pts:>7d} "
          f"{c.ours.pfs:>7d} {c.ours.essential_rate:>10.2f}%")
    print(f"  {'Eggers':<10s} {c.eggers.cold:>7d} "
          f"{c.eggers.true_sharing:>7d} {c.eggers.false_sharing:>7d} "
          f"{c.eggers.rate(c.eggers.essential_estimate):>10.2f}%")
    print(f"  {'Torrellas':<10s} {c.torrellas.cold:>7d} "
          f"{c.torrellas.true_sharing:>7d} {c.torrellas.false_sharing:>7d} "
          f"{c.torrellas.rate(c.torrellas.essential_estimate):>10.2f}%")
    return c


def main():
    print("Generating workloads...\n")
    lu = make_workload("LU32").generate()
    matmul = make_workload("MATMUL24").generate()

    c = show("LU32", lu)
    wbwi = run_protocol("WBWI", lu, BLOCK_BYTES)
    print(f"\n  WBWI's actual miss rate: {wbwi.miss_rate:.2f}%")
    print(f"  Against OUR essential rate ({c.ours.essential_rate:.2f}%) "
          f"WBWI is nearly optimal;")
    print(f"  against Eggers' estimate "
          f"({c.eggers.rate(c.eggers.essential_estimate):.2f}%) it would "
          f"look like there is room left to optimize — the paper's "
          f"section 7 warning.\n")

    c2 = show("MATMUL24 (non-iterative)", matmul)
    frac = c2.torrellas.cold / max(1, c2.torrellas.total)
    print(f"\n  Torrellas files {100 * frac:.0f}% of all misses as cold — "
          f"its sharing split is vacuous on single-touch algorithms "
          f"(the paper's section 3.1 criticism).")


if __name__ == "__main__":
    main()
